(* Tests for exact linear algebra: vectors, matrices, Gaussian elimination,
   Hermite normal form.  Property tests exercise random small integer
   matrices and validate algebraic identities exactly. *)

module Mpz = Inl_num.Mpz
module Q = Inl_num.Q
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Gauss = Inl_linalg.Gauss
module Hermite = Inl_linalg.Hermite

let vec_t = Alcotest.testable Vec.pp Vec.equal
let mat_t = Alcotest.testable Mat.pp Mat.equal
let mpz_t = Alcotest.testable Mpz.pp Mpz.equal

(* ---- Vec ---- *)

let test_vec_basics () =
  let v = Vec.of_int_list [ 0; 0; 3; -1 ] in
  Alcotest.(check (option int)) "height" (Some 2) (Vec.height v);
  Alcotest.(check bool) "lex positive" true (Vec.lex_positive v);
  Alcotest.(check bool) "lex positive neg" false (Vec.lex_positive (Vec.neg v));
  Alcotest.(check bool) "zero nonneg" true (Vec.lex_nonnegative (Vec.zero 3));
  Alcotest.(check bool) "zero not pos" false (Vec.lex_positive (Vec.zero 3));
  Alcotest.(check mpz_t) "dot" (Mpz.of_int (-7))
    (Vec.dot (Vec.of_int_list [ 1; 2; 3 ]) (Vec.of_int_list [ 2; 0; -3 ]));
  Alcotest.(check vec_t) "project" (Vec.of_int_list [ 3; 0 ])
    (Vec.project v [ 2; 0 ]);
  Alcotest.(check mpz_t) "gcd" (Mpz.of_int 4) (Vec.gcd (Vec.of_int_list [ 8; -12; 4 ]))

let test_lex_compare () =
  let a = Vec.of_int_list [ 1; 0; 0 ] and b = Vec.of_int_list [ 0; 9; 9 ] in
  Alcotest.(check bool) "a > b" true (Vec.lex_compare a b > 0);
  Alcotest.(check bool) "b < a" true (Vec.lex_compare b a < 0);
  Alcotest.(check int) "eq" 0 (Vec.lex_compare a (Vec.copy a))

(* ---- Mat ---- *)

let test_mat_mul () =
  let a = Mat.of_int_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = Mat.of_int_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  Alcotest.(check mat_t) "a*b" (Mat.of_int_lists [ [ 2; 1 ]; [ 4; 3 ] ]) (Mat.mul a b);
  Alcotest.(check mat_t) "id*a" a (Mat.mul (Mat.identity 2) a);
  Alcotest.(check vec_t) "apply" (Vec.of_int_list [ 5; 11 ])
    (Mat.apply a (Vec.of_int_list [ 1; 2 ]))

let test_permutation () =
  Alcotest.(check bool) "identity is perm" true (Mat.is_permutation (Mat.identity 4));
  Alcotest.(check bool) "swap is perm" true (Mat.is_permutation (Mat.swap_rows_matrix 4 0 3));
  let not_perm = Mat.of_int_lists [ [ 1; 1 ]; [ 0; 0 ] ] in
  Alcotest.(check bool) "not perm" false (Mat.is_permutation not_perm);
  (* permutation_of_list moves index i to p_i *)
  let p = Mat.permutation_of_list [ 2; 0; 1 ] in
  Alcotest.(check vec_t) "perm apply" (Vec.of_int_list [ 20; 30; 10 ])
    (Mat.apply p (Vec.of_int_list [ 10; 20; 30 ]))

(* Paper, Section 4.1: interchanging the I and J loops of simplified
   Cholesky permutes instance-vector positions 0 and 3. *)
let test_paper_interchange_matrix () =
  let m = Mat.swap_rows_matrix 4 0 3 in
  let s1 i = Vec.of_int_list [ i; 0; 1; i ] in
  let s2 i j = Vec.of_int_list [ i; 1; 0; j ] in
  (* S1 instance vectors are coincidentally fixed *)
  Alcotest.(check vec_t) "S1 fixed" (s1 5) (Mat.apply m (s1 5));
  Alcotest.(check vec_t) "S2 swapped" (Vec.of_int_list [ 7; 1; 0; 2 ]) (Mat.apply m (s2 2 7))

(* ---- Gauss ---- *)

let test_rank () =
  Alcotest.(check int) "full" 2 (Gauss.rank (Mat.of_int_lists [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "deficient" 1 (Gauss.rank (Mat.of_int_lists [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "zero" 0 (Gauss.rank (Mat.make 3 3));
  Alcotest.(check int) "wide" 2 (Gauss.rank (Mat.of_int_lists [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]))

let test_determinant () =
  Alcotest.(check mpz_t) "2x2" (Mpz.of_int (-2)) (Gauss.determinant (Mat.of_int_lists [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check mpz_t) "singular" Mpz.zero (Gauss.determinant (Mat.of_int_lists [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check mpz_t) "id" Mpz.one (Gauss.determinant (Mat.identity 5))

let test_inverse () =
  let m = Mat.of_int_lists [ [ 1; -1 ]; [ 0; 1 ] ] in
  (match Gauss.inverse m with
  | None -> Alcotest.fail "expected invertible"
  | Some inv ->
      let prod = Gauss.apply_q inv [| Q.of_int 3; Q.of_int 4 |] in
      Alcotest.(check bool) "inv apply" true (Q.equal prod.(0) (Q.of_int 7) && Q.equal prod.(1) (Q.of_int 4)));
  Alcotest.(check bool) "singular has no inverse" true
    (Gauss.inverse (Mat.of_int_lists [ [ 1; 2 ]; [ 2; 4 ] ]) = None)

let test_nullspace () =
  let m = Mat.of_int_lists [ [ 1; 1; 0 ]; [ 0; 0; 1 ] ] in
  let ns = Gauss.nullspace m in
  Alcotest.(check int) "dim" 1 (List.length ns);
  List.iter
    (fun v -> Alcotest.(check bool) "in kernel" true (Vec.is_zero (Mat.apply m v)))
    ns;
  Alcotest.(check (list vec_t)) "full rank kernel empty" [] (Gauss.nullspace (Mat.identity 3))

let test_solve () =
  let m = Mat.of_int_lists [ [ 2; 0 ]; [ 0; 4 ] ] in
  (match Gauss.solve m (Vec.of_int_list [ 3; 2 ]) with
  | None -> Alcotest.fail "solvable"
  | Some x ->
      Alcotest.(check bool) "x0=3/2" true (Q.equal x.(0) (Q.of_ints 3 2));
      Alcotest.(check bool) "x1=1/2" true (Q.equal x.(1) (Q.of_ints 1 2)));
  let inconsistent = Mat.of_int_lists [ [ 1; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check bool) "inconsistent" true (Gauss.solve inconsistent (Vec.of_int_list [ 0; 1 ]) = None)

let test_row_dependency () =
  let m = Mat.of_int_lists [ [ 1; 0 ]; [ 0; 1 ]; [ 2; 3 ] ] in
  (match Gauss.row_dependency m 2 with
  | None -> Alcotest.fail "row 2 depends on rows 0,1"
  | Some c ->
      Alcotest.(check bool) "coeffs" true (Q.equal c.(0) (Q.of_int 2) && Q.equal c.(1) (Q.of_int 3)));
  Alcotest.(check bool) "independent row" true (Gauss.row_dependency m 1 = None);
  Alcotest.(check (list int)) "independent indices" [ 0; 1 ] (Gauss.independent_row_indices m)

(* ---- Hermite ---- *)

let test_hermite () =
  let check_hnf a =
    let h, u = Hermite.decompose a in
    Alcotest.(check mat_t) "A*U = H" h (Mat.mul a u);
    Alcotest.(check bool) "U unimodular" true (Gauss.is_unimodular u);
    let n = Mat.rows h in
    for i = 0 to n - 1 do
      Alcotest.(check bool) "positive diagonal" true (Mpz.is_positive (Mat.get h i i));
      for j = i + 1 to n - 1 do
        Alcotest.(check mpz_t) "upper zero" Mpz.zero (Mat.get h i j)
      done;
      for j = 0 to i - 1 do
        let x = Mat.get h i j in
        Alcotest.(check bool) "reduced" true
          (Mpz.sign x >= 0 && Mpz.compare x (Mat.get h i i) < 0)
      done
    done
  in
  check_hnf (Mat.of_int_lists [ [ 2; 1 ]; [ 0; 3 ] ]);
  check_hnf (Mat.of_int_lists [ [ 1; -1 ]; [ 0; 1 ] ]);
  check_hnf (Mat.of_int_lists [ [ 4; 6 ]; [ 2; 5 ] ]);
  check_hnf (Mat.of_int_lists [ [ 3; 0; 0 ]; [ 1; 2; 0 ]; [ 0; 5; 7 ] ])

let test_completion () =
  let rows = [ Vec.of_int_list [ 1; 1; 0 ] ] in
  let m = Hermite.completion rows 3 in
  Alcotest.(check int) "square" 3 (Mat.rows m);
  Alcotest.(check bool) "nonsingular" true (Gauss.is_nonsingular m);
  Alcotest.(check vec_t) "first row kept" (List.hd rows) (Mat.row m 0);
  Alcotest.check_raises "dependent rows rejected"
    (Invalid_argument "Hermite.completion: rows are dependent") (fun () ->
      ignore (Hermite.completion [ Vec.of_int_list [ 1; 0 ]; Vec.of_int_list [ 2; 0 ] ] 2))

(* ---- properties ---- *)

let gen_mat n lo hi =
  QCheck2.Gen.(array_size (return (n * n)) (int_range lo hi))
  |> QCheck2.Gen.map (fun a ->
         Mat.of_int_lists (List.init n (fun i -> List.init n (fun j -> a.((i * n) + j)))))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen f)

let props =
  [
    prop "det(AB) = det A det B" (QCheck2.Gen.pair (gen_mat 3 (-4) 4) (gen_mat 3 (-4) 4))
      (fun (a, b) ->
        Mpz.equal (Gauss.determinant (Mat.mul a b)) (Mpz.mul (Gauss.determinant a) (Gauss.determinant b)));
    prop "inverse really inverts" (gen_mat 3 (-5) 5) (fun a ->
        match Gauss.inverse a with
        | None -> Mpz.is_zero (Gauss.determinant a)
        | Some inv ->
            let v = [| Q.of_int 1; Q.of_int (-2); Q.of_int 3 |] in
            let back =
              Gauss.apply_q (Gauss.of_mat a) (Gauss.apply_q inv v)
            in
            Array.for_all2 Q.equal back v);
    prop "nullspace vectors are in the kernel" (gen_mat 3 (-3) 3) (fun a ->
        List.for_all (fun v -> Vec.is_zero (Mat.apply a v)) (Gauss.nullspace a)
        && Gauss.rank a + List.length (Gauss.nullspace a) = 3);
    prop "hermite invariants" (gen_mat 3 (-6) 6) (fun a ->
        if not (Gauss.is_nonsingular a) then true
        else begin
          let h, u = Hermite.decompose a in
          Mat.equal h (Mat.mul a u)
          && Gauss.is_unimodular u
          &&
          let ok = ref true in
          for i = 0 to 2 do
            if not (Mpz.is_positive (Mat.get h i i)) then ok := false;
            for j = i + 1 to 2 do
              if not (Mpz.is_zero (Mat.get h i j)) then ok := false
            done
          done;
          !ok
        end);
    prop "rank of transpose equals rank" (gen_mat 4 (-3) 3) (fun a ->
        Gauss.rank a = Gauss.rank (Mat.transpose a));
    prop "permutation matrices are unimodular" (QCheck2.Gen.int_range 0 23) (fun seed ->
        (* derive a permutation of 0..3 from the seed *)
        let l = ref [ 0; 1; 2; 3 ] in
        let perm = ref [] in
        let s = ref seed in
        for k = 4 downto 1 do
          let i = !s mod k in
          s := !s / k;
          perm := List.nth !l i :: !perm;
          l := List.filter (fun x -> x <> List.nth !l i) !l
        done;
        let m = Mat.permutation_of_list !perm in
        Mat.is_permutation m && Gauss.is_unimodular m);
  ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "lex compare" `Quick test_lex_compare;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul/apply" `Quick test_mat_mul;
          Alcotest.test_case "permutations" `Quick test_permutation;
          Alcotest.test_case "paper 4.1 interchange" `Quick test_paper_interchange_matrix;
        ] );
      ( "gauss",
        [
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "nullspace" `Quick test_nullspace;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "row dependency" `Quick test_row_dependency;
        ] );
      ( "hermite",
        [
          Alcotest.test_case "decompose" `Quick test_hermite;
          Alcotest.test_case "completion" `Quick test_completion;
        ] );
      ("properties", props);
    ]
