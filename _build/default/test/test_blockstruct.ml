(* Tests for block-structure recovery (Section 5.2, Figures 5-6): the
   edge rows must encode per-node child permutations, the transformed AST
   is reconstructed from them, and malformed matrices are rejected with
   diagnostics. *)

module Mpz = Inl_num.Mpz
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Blockstruct = Inl.Blockstruct

let cholesky = Inl.analyze_source Inl_kernels.Paper_examples.cholesky
let simple = Inl.analyze_source Inl_kernels.Paper_examples.simplified_cholesky

let test_identity_structure () =
  match Blockstruct.infer simple.Inl.layout (Mat.identity 4) with
  | Error m -> Alcotest.fail m
  | Ok st ->
      Alcotest.(check bool) "same program" true
        (st.Blockstruct.new_program = simple.Inl.program);
      Alcotest.(check (array int)) "identity position map" [| 0; 1; 2; 3 |]
        st.Blockstruct.old_to_new

let test_reorder_structure () =
  let r = Inl.Tmat.reorder simple.Inl.layout ~parent:[ 0 ] ~perm:[ 1; 0 ] in
  match Blockstruct.infer simple.Inl.layout r with
  | Error m -> Alcotest.fail m
  | Ok st -> (
      (* child order flips: J-loop first *)
      (match st.Blockstruct.new_program.Ast.nest with
      | [ Ast.Loop l ] -> (
          match l.Ast.body with
          | [ Ast.Loop _; Ast.Stmt s ] -> Alcotest.(check string) "S1 second" "S1" s.Ast.label
          | _ -> Alcotest.fail "expected [loop; stmt]")
      | _ -> Alcotest.fail "expected one outer loop");
      (* statement paths remap *)
      Alcotest.(check (list int)) "S1 path" [ 0; 1 ] (Blockstruct.map_path st [ 0; 0 ]);
      Alcotest.(check (list int)) "S2 path" [ 0; 0; 0 ] (Blockstruct.map_path st [ 0; 1; 0 ]))

let test_wrong_size_rejected () =
  match Blockstruct.infer simple.Inl.layout (Mat.identity 5) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong dimension must be rejected"

let test_broken_edge_square_rejected () =
  (* zero out an edge row: no longer a permutation *)
  let m = Mat.identity 4 in
  Mat.set m 1 1 Mpz.zero;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Blockstruct.infer simple.Inl.layout m with
  | Error msg -> Alcotest.(check bool) "mentions permutation" true (contains msg "permutation")
  | Ok _ -> Alcotest.fail "broken edge square must be rejected");
  (* an edge row referencing a loop column is not structural *)
  let m2 = Mat.identity 4 in
  Mat.set m2 1 0 Mpz.one;
  match Blockstruct.infer simple.Inl.layout m2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "edge row with loop-column entry must be rejected"

let test_cholesky_structures () =
  (* all 6 child permutations of the Cholesky root are recoverable and
     distinct *)
  let rs = Inl.Completion.reorder_matrices cholesky.Inl.layout in
  Alcotest.(check int) "6 structures" 6 (List.length rs);
  let programs =
    List.map
      (fun r ->
        match Blockstruct.infer cholesky.Inl.layout r with
        | Ok st -> Inl.Pp.program_to_string st.Blockstruct.new_program
        | Error m -> Alcotest.fail m)
      rs
  in
  Alcotest.(check int) "all distinct" 6 (List.length (List.sort_uniq compare programs))

let test_new_layout_consistency () =
  (* position mapping is a bijection consistent with the new layout's
     position kinds *)
  let r = Inl.Tmat.reorder cholesky.Inl.layout ~parent:[ 0 ] ~perm:[ 2; 0; 1 ] in
  match Blockstruct.infer cholesky.Inl.layout r with
  | Error m -> Alcotest.fail m
  | Ok st ->
      let n = Layout.size cholesky.Inl.layout in
      let seen = Array.make n false in
      Array.iteri
        (fun old_idx new_idx ->
          if new_idx >= 0 then begin
            Alcotest.(check bool) "in range" true (new_idx < n);
            Alcotest.(check bool) "injective" false seen.(new_idx);
            seen.(new_idx) <- true;
            let kind_of = function Layout.Ploop _ -> `L | Layout.Pedge _ -> `E in
            Alcotest.(check bool) "kind preserved" true
              (kind_of cholesky.Inl.layout.Layout.positions.(old_idx)
              = kind_of st.Blockstruct.new_layout.Layout.positions.(new_idx))
          end)
        st.Blockstruct.old_to_new

let () =
  Alcotest.run "blockstruct"
    [
      ( "blockstruct",
        [
          Alcotest.test_case "identity" `Quick test_identity_structure;
          Alcotest.test_case "reorder recovery" `Quick test_reorder_structure;
          Alcotest.test_case "wrong size rejected" `Quick test_wrong_size_rejected;
          Alcotest.test_case "broken edge rows rejected" `Quick test_broken_edge_square_rejected;
          Alcotest.test_case "all Cholesky structures" `Quick test_cholesky_structures;
          Alcotest.test_case "position map consistency" `Quick test_new_layout_consistency;
        ] );
    ]
