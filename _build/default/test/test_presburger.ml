(* Tests for the integer linear programming engine.

   The load-bearing tests here are differential: on random small systems
   confined to a box, [Omega.satisfiable], [Omega.project] and
   [Omega.implied_interval] must agree exactly with brute-force
   enumeration.  This exercises the unit-coefficient substitution path,
   Pugh's mod-hat equality reduction, and the dark-shadow/splinter
   inequality elimination. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Interval = Inl_presburger.Interval

let le = Linexpr.of_terms
let interval_t = Alcotest.testable Interval.pp Interval.equal

(* ---- Linexpr unit tests ---- *)

let test_linexpr_algebra () =
  let e = le [ (2, "x"); (-1, "y") ] 3 in
  Alcotest.(check int) "coeff x" 2 (Mpz.to_int (Linexpr.coeff e "x"));
  Alcotest.(check int) "coeff z" 0 (Mpz.to_int (Linexpr.coeff e "z"));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Linexpr.vars e);
  let e2 = Linexpr.add e (le [ (-2, "x") ] 0) in
  Alcotest.(check bool) "cancel" true (not (Linexpr.mem e2 "x"));
  let s = Linexpr.subst e "x" (le [ (1, "y") ] 1) in
  (* 2(y+1) - y + 3 = y + 5 *)
  Alcotest.(check bool) "subst" true (Linexpr.equal s (le [ (1, "y") ] 5));
  let v = Linexpr.eval e (fun x -> if x = "x" then Mpz.of_int 4 else Mpz.of_int 1) in
  Alcotest.(check int) "eval" 10 (Mpz.to_int v)

let test_constr_normalize () =
  (* 2x - 1 >= 0 tightens to x - 1 >= 0 *)
  (match Constr.normalize (Constr.ge (le [ (2, "x") ] (-1))) with
  | `Constr c -> Alcotest.(check bool) "tighten" true (Constr.equal c (Constr.ge (le [ (1, "x") ] (-1))))
  | _ -> Alcotest.fail "expected constraint");
  (* 2x = 1 is infeasible *)
  (match Constr.normalize (Constr.eq (le [ (2, "x") ] (-1))) with
  | `False -> ()
  | _ -> Alcotest.fail "expected False");
  (match Constr.normalize (Constr.ge (Linexpr.of_int 0)) with
  | `True -> ()
  | _ -> Alcotest.fail "expected True");
  match Constr.normalize (Constr.eq (Linexpr.of_int 1)) with
  | `False -> ()
  | _ -> Alcotest.fail "expected False"

(* ---- targeted Omega unit tests ---- *)

let test_simple_sat () =
  let sys = System.of_list [ Constr.ge2 (Linexpr.var "x") (Linexpr.of_int 1); Constr.le2 (Linexpr.var "x") (Linexpr.of_int 10) ] in
  Alcotest.(check bool) "sat" true (Omega.satisfiable sys);
  let sys2 = System.add (Constr.ge2 (Linexpr.var "x") (Linexpr.of_int 11)) sys in
  Alcotest.(check bool) "unsat" false (Omega.satisfiable sys2)

let test_parity_unsat () =
  (* x even and x odd: 2a = x, 2b = x - 1 *)
  let sys =
    System.of_list
      [
        Constr.eq (le [ (2, "a"); (-1, "x") ] 0);
        Constr.eq (le [ (2, "b"); (-1, "x") ] 1);
      ]
  in
  Alcotest.(check bool) "even+odd unsat" false (Omega.satisfiable sys)

let test_dark_shadow_gap () =
  (* 3x >= 2 and 3x <= 3  =>  x = 1 exists.
     3x >= 4 and 3x <= 5  =>  no integer x (rational shadow nonempty). *)
  let mk lo hi =
    System.of_list [ Constr.ge (le [ (3, "x") ] (-lo)); Constr.le (le [ (3, "x") ] (-hi)) ]
  in
  Alcotest.(check bool) "3x in [2,3] sat" true (Omega.satisfiable (mk 2 3));
  Alcotest.(check bool) "3x in [4,5] unsat" false (Omega.satisfiable (mk 4 5))

let test_nonunit_equality () =
  (* 7x + 12y = 17 has integer solutions (x = -1, y = 2). *)
  let sys = System.of_list [ Constr.eq (le [ (7, "x"); (12, "y") ] (-17)) ] in
  Alcotest.(check bool) "7x+12y=17 sat" true (Omega.satisfiable sys);
  (* 6x + 9y = 5: gcd 3 does not divide 5. *)
  let sys2 = System.of_list [ Constr.eq (le [ (6, "x"); (9, "y") ] (-5)) ] in
  Alcotest.(check bool) "6x+9y=5 unsat" false (Omega.satisfiable sys2)

let test_implied_interval_basic () =
  let sys =
    System.of_list
      [
        Constr.ge2 (Linexpr.var "x") (Linexpr.of_int 2);
        Constr.le2 (Linexpr.var "x") (Linexpr.of_int 9);
        Constr.eq2 (Linexpr.var "y") (le [ (2, "x") ] 1);
      ]
  in
  Alcotest.(check interval_t) "x in [2,9]" (Interval.of_ints 2 9) (Omega.implied_interval sys "x");
  Alcotest.(check interval_t) "y in [5,19]" (Interval.of_ints 5 19) (Omega.implied_interval sys "y")

(* Paper Section 3: the flow-dependence system of simplified Cholesky.
   Constraints (Equation 2) plus Delta definitions (Equation 3); the
   projection must give Delta1 = 0 and Delta2 = "+". *)
let test_paper_cholesky_deltas () =
  let v = Linexpr.var in
  let sys =
    System.of_list
      [
        Constr.ge2 (v "Ir") (Linexpr.of_int 1);
        Constr.le2 (v "Ir") (v "N");
        Constr.gt2 (v "Jr") (v "Ir");
        Constr.le2 (v "Jr") (v "N");
        Constr.ge2 (v "Iw") (Linexpr.of_int 1);
        Constr.le2 (v "Iw") (v "N");
        Constr.le2 (v "Iw") (v "Ir");
        Constr.eq2 (v "Ir") (v "Iw");
        Constr.eq2 (v "D1") (Linexpr.sub (v "Ir") (v "Iw"));
        Constr.eq2 (v "D2") (Linexpr.sub (v "Jr") (v "Iw"));
      ]
  in
  Alcotest.(check interval_t) "Delta1 = 0" Interval.zero (Omega.implied_interval sys "D1");
  Alcotest.(check interval_t) "Delta2 = +" Interval.plus (Omega.implied_interval sys "D2")

(* Projection onto a kept variable can require a mod constraint, which the
   output carries via an existential wildcard: -x + 3y + 2 = 0 with y
   eliminated means x = 2 (mod 3).  The interval machinery must still be
   exact (probing path). *)
let test_mod_constraint_projection () =
  let sys =
    System.of_list
      [
        Constr.eq (le [ (-1, "x"); (3, "y") ] 2);
        Constr.ge2 (Linexpr.var "x") (Linexpr.of_int (-5));
        Constr.le2 (Linexpr.var "x") (Linexpr.of_int 5);
        Constr.ge2 (Linexpr.var "y") (Linexpr.of_int (-5));
        Constr.le2 (Linexpr.var "y") (Linexpr.of_int 5);
        Constr.le2 (Linexpr.var "x") (Linexpr.of_int (-4));
      ]
  in
  (* solutions: x in {-5..-4} with x = 2 mod 3 and y = (x-2)/3 in box:
     x = -4 (y = -2) only *)
  Alcotest.(check interval_t) "x pinned to -4" (Interval.of_ints (-4) (-4))
    (Omega.implied_interval sys "x");
  let disjuncts = Omega.project sys ~keep:(fun v -> v = "x") in
  Alcotest.(check bool) "projection non-empty" true (disjuncts <> []);
  (* membership via satisfiability: -4 in, -5 out *)
  let member c =
    List.exists
      (fun d -> Omega.satisfiable (System.add (Constr.eq2 (Linexpr.var "x") (Linexpr.of_int c)) d))
      disjuncts
  in
  Alcotest.(check bool) "-4 member" true (member (-4));
  Alcotest.(check bool) "-5 not member" false (member (-5))

(* Parametric systems: the interval over all values of a free parameter. *)
let test_parametric_interval () =
  let sys =
    System.of_list
      [
        Constr.ge2 (Linexpr.var "i") (Linexpr.of_int 1);
        Constr.le2 (Linexpr.var "i") (Linexpr.var "N");
        Constr.eq2 (Linexpr.var "d") (Linexpr.sub (Linexpr.var "N") (Linexpr.var "i"));
      ]
  in
  (* d = N - i with 1 <= i <= N: d in [0, oo) over all N *)
  Alcotest.(check interval_t) "d = +0"
    Interval.{ lo = Fin Mpz.zero; hi = PosInf }
    (Omega.implied_interval sys "d")

(* Strict alternation of quantifier-free structure: systems whose only
   integer solutions need splinters. *)
let test_splinter_path () =
  (* 3x in [5,7] admits x = 2; 3x in [7,8] admits nothing; the extra
     pinned variable routes both through the non-exact pair machinery *)
  let mk lo hi extra =
    System.of_list
      ([
         Constr.ge (le [ (3, "x"); (1, "y") ] (-lo));
         Constr.le (le [ (3, "x"); (1, "y") ] (-hi));
         Constr.eq2 (Linexpr.var "y") (Linexpr.of_int 0);
       ]
      @ extra)
  in
  Alcotest.(check bool) "3x in [5,7] with y=0: x=2" true (Omega.satisfiable (mk 5 7 []));
  Alcotest.(check bool) "3x in [7,8] with y=0: none" false (Omega.satisfiable (mk 7 8 []))

let test_implies () =
  let sys =
    System.of_list
      [ Constr.ge2 (Linexpr.var "x") (Linexpr.of_int 3); Constr.le2 (Linexpr.var "x") (Linexpr.of_int 5) ]
  in
  Alcotest.(check bool) "x>=1 implied" true (Omega.implies sys (Constr.ge (le [ (1, "x") ] (-1))));
  Alcotest.(check bool) "x>=4 not implied" false (Omega.implies sys (Constr.ge (le [ (1, "x") ] (-4))));
  Alcotest.(check bool) "unsat implies anything" true
    (Omega.implies
       (System.add (Constr.ge2 (Linexpr.var "x") (Linexpr.of_int 9)) sys)
       (Constr.eq (le [ (1, "x") ] 1000)))

(* ---- differential properties against brute force ---- *)

let box_vars = [ "x"; "y"; "z" ]
let box_lo = -5
let box_hi = 5
let box = List.map (fun v -> (v, box_lo, box_hi)) box_vars

(* random constraint generator *)
let gen_constr : Constr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* nvars = int_range 1 3 in
  let* coefs = list_size (return nvars) (int_range (-3) 3) in
  let* which = list_size (return nvars) (int_range 0 2) in
  let* const = int_range (-8) 8 in
  let* is_eq = frequency [ (3, return false); (1, return true) ] in
  let terms = List.map2 (fun c w -> (c, List.nth box_vars w)) coefs which in
  let e = le terms const in
  return (if is_eq then Constr.eq e else Constr.ge e)

let gen_sys : System.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  list_size (return n) gen_constr

(* Box constraints as part of the system, so the engine and brute force see
   the same solution set. *)
let boxed sys =
  List.fold_left
    (fun acc v ->
      System.add
        (Constr.ge2 (Linexpr.var v) (Linexpr.of_int box_lo))
        (System.add (Constr.le2 (Linexpr.var v) (Linexpr.of_int box_hi)) acc))
    sys box_vars

let prop name ?(count = 300) gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let sols sys = System.solutions_in_box sys box

module Pairset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let props =
  [
    prop "satisfiable agrees with brute force" gen_sys (fun sys ->
        let sys = boxed sys in
        Omega.satisfiable sys = (sols sys <> []));
    prop "implied_interval is the exact hull" gen_sys (fun sys ->
        let sys = boxed sys in
        let xs = List.map (fun s -> List.nth s 0) (sols sys) in
        let got = Omega.implied_interval sys "x" in
        match xs with
        | [] -> Interval.is_empty got
        | _ ->
            let lo = List.fold_left min max_int xs and hi = List.fold_left max min_int xs in
            Interval.equal got (Interval.of_ints lo hi));
    prop "projection is exact" ~count:150 gen_sys (fun sys ->
        let sys = boxed sys in
        let expected =
          List.fold_left
            (fun acc s -> Pairset.add (List.nth s 0, List.nth s 1) acc)
            Pairset.empty (sols sys)
        in
        let keep v = v = "x" || v = "y" in
        let disjuncts = Omega.project sys ~keep in
        (* every disjunct mentions only kept variables or existential
           wildcards (which encode mod constraints) *)
        List.for_all
          (fun d ->
            List.for_all
              (fun v -> keep v || String.length v >= 2 && String.sub v 0 2 = "$w")
              (System.vars d))
          disjuncts
        &&
        (* membership via satisfiability, which quantifies the wildcards *)
        let got = ref Pairset.empty in
        for x0 = box_lo to box_hi do
          for y0 = box_lo to box_hi do
            let point =
              [
                Constr.eq2 (Linexpr.var "x") (Linexpr.of_int x0);
                Constr.eq2 (Linexpr.var "y") (Linexpr.of_int y0);
              ]
            in
            if List.exists (fun d -> Omega.satisfiable (System.append point d)) disjuncts then
              got := Pairset.add (x0, y0) !got
          done
        done;
        Pairset.equal expected !got);
    prop "normalization preserves solutions" gen_sys (fun sys ->
        let sys = boxed sys in
        match System.normalize sys with
        | None -> sols sys = []
        | Some sys' -> sols sys = sols sys');
  ]

let () =
  Alcotest.run "presburger"
    [
      ( "linexpr",
        [
          Alcotest.test_case "algebra" `Quick test_linexpr_algebra;
          Alcotest.test_case "constraint normalize" `Quick test_constr_normalize;
        ] );
      ( "omega",
        [
          Alcotest.test_case "simple sat/unsat" `Quick test_simple_sat;
          Alcotest.test_case "parity unsat" `Quick test_parity_unsat;
          Alcotest.test_case "dark shadow gap" `Quick test_dark_shadow_gap;
          Alcotest.test_case "non-unit equality (mod trick)" `Quick test_nonunit_equality;
          Alcotest.test_case "implied intervals" `Quick test_implied_interval_basic;
          Alcotest.test_case "paper: Cholesky deltas (Section 3)" `Quick test_paper_cholesky_deltas;
          Alcotest.test_case "implication" `Quick test_implies;
          Alcotest.test_case "mod-constraint projection" `Quick test_mod_constraint_projection;
          Alcotest.test_case "parametric interval" `Quick test_parametric_interval;
          Alcotest.test_case "splinter path" `Quick test_splinter_path;
        ] );
      ("differential", props);
    ]
