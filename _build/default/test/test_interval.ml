(* Unit and property tests for the interval domain that carries the
   dependence distance/direction abstraction. *)

module Mpz = Inl_num.Mpz
module I = Inl_presburger.Interval

let t = Alcotest.testable I.pp I.equal
let z = Mpz.of_int

let test_symbols () =
  Alcotest.(check string) "point" "3" (I.to_symbol (I.of_int 3));
  Alcotest.(check string) "plus" "+" (I.to_symbol I.plus);
  Alcotest.(check string) "minus" "-" (I.to_symbol I.minus);
  Alcotest.(check string) "star" "*" (I.to_symbol I.top);
  Alcotest.(check string) "nonneg" "+0" (I.to_symbol (I.make (Fin Mpz.zero) PosInf));
  Alcotest.(check string) "nonpos" "-0" (I.to_symbol (I.make NegInf (Fin Mpz.zero)));
  Alcotest.(check string) "range" "[2,5]" (I.to_symbol (I.of_ints 2 5));
  Alcotest.(check string) "ray" "[2,oo)" (I.to_symbol (I.make (Fin (z 2)) PosInf))

let test_predicates () =
  Alcotest.(check bool) "plus positive" true (I.definitely_positive I.plus);
  Alcotest.(check bool) "nonneg not positive" false
    (I.definitely_positive (I.make (Fin Mpz.zero) PosInf));
  Alcotest.(check bool) "nonneg is nonneg" true (I.definitely_nonneg (I.make (Fin Mpz.zero) PosInf));
  Alcotest.(check bool) "zero point" true (I.definitely_zero I.zero);
  Alcotest.(check bool) "minus negative" true (I.definitely_negative I.minus);
  Alcotest.(check bool) "empty not positive" false
    (I.definitely_positive (I.make PosInf NegInf));
  Alcotest.(check bool) "empty is empty" true (I.is_empty (I.of_ints 3 2));
  Alcotest.(check bool) "contains" true (I.contains (I.of_ints (-2) 2) Mpz.zero);
  Alcotest.(check bool) "not contains" false (I.contains I.plus Mpz.zero)

let test_arithmetic () =
  Alcotest.(check t) "add points" (I.of_int 5) (I.add (I.of_int 2) (I.of_int 3));
  Alcotest.(check t) "add ray" (I.make (Fin (z 3)) PosInf) (I.add I.plus (I.of_int 2));
  Alcotest.(check t) "plus + minus = star" I.top (I.add I.plus I.minus);
  Alcotest.(check t) "neg plus" I.minus (I.neg I.plus);
  Alcotest.(check t) "scale 0" I.zero (I.scale Mpz.zero I.top);
  Alcotest.(check t) "scale -1 flips" I.minus (I.scale Mpz.minus_one I.plus);
  Alcotest.(check t) "scale 2 range" (I.of_ints (-4) 6) (I.scale Mpz.two (I.of_ints (-2) 3))

let test_lattice () =
  Alcotest.(check t) "hull" (I.of_ints (-1) 7) (I.hull (I.of_ints (-1) 2) (I.of_ints 5 7));
  Alcotest.(check t) "hull with empty" (I.of_ints 1 2)
    (I.hull (I.make PosInf NegInf) (I.of_ints 1 2));
  Alcotest.(check t) "inter" (I.of_ints 2 3) (I.inter (I.of_ints 0 3) (I.of_ints 2 9));
  Alcotest.(check bool) "disjoint inter empty" true
    (I.is_empty (I.inter (I.of_ints 0 1) (I.of_ints 3 4)))

(* soundness of the interval ops w.r.t. concrete points *)
let gen_small_interval =
  let open QCheck2.Gen in
  let* a = int_range (-6) 6 in
  let* b = int_range (-6) 6 in
  let* kind = int_range 0 3 in
  return
    (match kind with
    | 0 -> I.of_ints (min a b) (max a b)
    | 1 -> I.make (Fin (z (min a b))) PosInf
    | 2 -> I.make NegInf (Fin (z (max a b)))
    | _ -> I.top)

let points iv =
  List.filter (fun x -> I.contains iv (z x)) (List.init 31 (fun i -> i - 15))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

let props =
  [
    prop "add sound on points" (QCheck2.Gen.pair gen_small_interval gen_small_interval)
      (fun (a, b) ->
        List.for_all
          (fun x ->
            List.for_all (fun y -> I.contains (I.add a b) (z (x + y))) (points b))
          (points a));
    prop "scale sound on points"
      (QCheck2.Gen.pair (QCheck2.Gen.int_range (-3) 3) gen_small_interval)
      (fun (k, a) -> List.for_all (fun x -> I.contains (I.scale (z k) a) (z (k * x))) (points a));
    prop "hull contains both" (QCheck2.Gen.pair gen_small_interval gen_small_interval)
      (fun (a, b) ->
        List.for_all (fun x -> I.contains (I.hull a b) (z x)) (points a @ points b));
    prop "inter is conjunction" (QCheck2.Gen.pair gen_small_interval gen_small_interval)
      (fun (a, b) ->
        List.for_all
          (fun x ->
            I.contains (I.inter a b) (z x) = (I.contains a (z x) && I.contains b (z x)))
          (List.init 31 (fun i -> i - 15)));
  ]

let () =
  Alcotest.run "interval"
    [
      ( "interval",
        [
          Alcotest.test_case "paper symbols" `Quick test_symbols;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "lattice ops" `Quick test_lattice;
        ] );
      ("properties", props);
    ]
