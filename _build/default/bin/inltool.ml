(* inltool — command-line driver for the imperfectly-nested-loop
   transformation framework.

     inltool show FILE            parse, validate, pretty-print + layout
     inltool deps FILE            dependence matrix (Section 3)
     inltool apply FILE OPTS      apply a transformation pipeline
     inltool complete FILE --row  complete a partial transformation
     inltool run FILE -N n        interpret and dump the final store

   Transformations compose left to right:
     inltool apply chol.loop --reorder 0:1,0 --interchange I,J --verify 6
*)

module Interp = Inl_interp.Interp
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path = Inl.analyze_source (read_file path)

(* ---- arguments ---- *)

let file_arg = Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE")

let nparam =
  Arg.(value & opt int 6 & info [ "N"; "size" ] ~docv:"N" ~doc:"Value for the size parameter N.")

(* ---- show ---- *)

let show_cmd =
  let run file =
    let ctx = load file in
    Format.printf "%s@." (Inl.Pp.program_to_string ctx.Inl.program);
    Format.printf "@.instance-vector positions:@.%a@." Inl.Layout.pp_positions ctx.Inl.layout;
    List.iter
      (fun (si : Inl.Layout.stmt_info) ->
        Format.printf "%s: loops=[%s] padded positions=[%s]@." si.Inl.Layout.label
          (String.concat ";"
             (List.map (fun (_, (l : Inl.Ast.loop)) -> l.Inl.Ast.var) si.Inl.Layout.loops))
          (String.concat ";" (List.map string_of_int si.Inl.Layout.padded_pos)))
      ctx.Inl.layout.Inl.Layout.stmts;
    0
  in
  Cmd.v (Cmd.info "show" ~doc:"Parse a program and print its instance-vector layout.")
    Term.(const run $ file_arg)

(* ---- deps ---- *)

let deps_cmd =
  let run file =
    let ctx = load file in
    Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;
    List.iter (fun d -> Format.printf "%a@." Inl.Dep.pp d) ctx.Inl.deps;
    0
  in
  Cmd.v (Cmd.info "deps" ~doc:"Print the dependence matrix (Section 3).")
    Term.(const run $ file_arg)

(* ---- apply ---- *)

let parse_step kind spec : Inl.Pipeline.step =
  let parts = String.split_on_char ',' spec in
  let fail () = failwith (Printf.sprintf "bad --%s argument %S" kind spec) in
  match (kind, parts) with
  | "interchange", [ a; b ] -> Inl.Pipeline.Interchange (a, b)
  | "reverse", [ v ] -> Inl.Pipeline.Reverse v
  | "scale", [ v; k ] -> Inl.Pipeline.Scale (v, int_of_string k)
  | "skew", [ t; s; f ] -> Inl.Pipeline.Skew { target = t; source = s; factor = int_of_string f }
  | "align", [ s; l; k ] -> Inl.Pipeline.Align { stmt = s; loop = l; amount = int_of_string k }
  | "reorder", _ -> (
      (* path:perm, e.g. 0:1,0  — children of node [0] permuted *)
      match String.index_opt spec ':' with
      | None -> fail ()
      | Some i ->
          let path =
            String.sub spec 0 i |> String.split_on_char '.'
            |> List.filter (fun s -> s <> "")
            |> List.map int_of_string
          in
          let perm =
            String.sub spec (i + 1) (String.length spec - i - 1)
            |> String.split_on_char ',' |> List.map int_of_string
          in
          Inl.Pipeline.Reorder { parent = path; perm })
  | _ -> fail ()

let list_opt name doc = Arg.(value & opt_all string [] & info [ name ] ~docv:"SPEC" ~doc)

let apply_cmd =
  let run file interchanges reverses scales skews aligns reorders no_simplify verify =
    let ctx = load file in
    let steps =
      List.map (parse_step "interchange") interchanges
      @ List.map (parse_step "reverse") reverses
      @ List.map (parse_step "scale") scales
      @ List.map (parse_step "skew") skews
      @ List.map (parse_step "align") aligns
      @ List.map (parse_step "reorder") reorders
    in
    if steps = [] then begin
      prerr_endline "no transformation steps given";
      2
    end
    else begin
      match Inl.pipeline ctx steps with
      | Error msg ->
          Printf.eprintf "pipeline error: %s\n" msg;
          1
      | Ok total -> (
      Format.printf "transformation matrix:@.%a@.@." Inl.Mat.pp total;
      match Inl.transform ctx ~simplify:(not no_simplify) total with
      | Error msg ->
          Printf.eprintf "illegal transformation: %s\n" msg;
          1
      | Ok prog ->
          Format.printf "%s@." (Inl.Pp.program_to_string prog);
          (match verify with
          | None -> ()
          | Some n -> (
              match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
              | Ok () -> Printf.printf "\nverified equivalent at N = %d\n" n
              | Error d -> Printf.printf "\nNOT EQUIVALENT at N = %d: %s\n" n d));
          0)
    end
  in
  let no_simplify =
    Arg.(value & flag & info [ "no-simplify" ] ~doc:"Skip the cleanup pass of Section 5.5.")
  in
  let verify =
    Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"N" ~doc:"Check equivalence by interpretation at size N.")
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply a pipeline of loop transformations (Section 4).")
    Term.(
      const run $ file_arg
      $ list_opt "interchange" "Interchange two loops: $(i,A,B)."
      $ list_opt "reverse" "Reverse a loop: $(i,V)."
      $ list_opt "scale" "Scale a loop: $(i,V,k)."
      $ list_opt "skew" "Skew target by source: $(i,T,S,f)."
      $ list_opt "align" "Align a statement w.r.t. a loop: $(i,S,L,k)."
      $ list_opt "reorder" "Reorder children of a node: $(i,PATH:p0,p1,...)."
      $ no_simplify $ verify)

(* ---- complete ---- *)

let complete_cmd =
  let run file rows verify =
    let ctx = load file in
    let partial =
      List.map
        (fun spec -> Inl.Vec.of_int_list (List.map int_of_string (String.split_on_char ',' spec)))
        rows
    in
    match Inl.complete ctx ~partial with
    | None ->
        prerr_endline "no legal completion found";
        1
    | Some m ->
        Format.printf "completed matrix:@.%a@.@." Inl.Mat.pp m;
        let prog = Inl.transform_exn ctx m in
        Format.printf "%s@." (Inl.Pp.program_to_string prog);
        (match verify with
        | None -> ()
        | Some n -> (
            match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
            | Ok () -> Printf.printf "\nverified equivalent at N = %d\n" n
            | Error d -> Printf.printf "\nNOT EQUIVALENT at N = %d: %s\n" n d));
        0
  in
  let rows =
    Arg.(value & opt_all string [] & info [ "row" ] ~docv:"a,b,..." ~doc:"A partial matrix row (repeatable; the first rows of the target matrix).")
  in
  let verify =
    Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"N" ~doc:"Check equivalence at size N.")
  in
  Cmd.v
    (Cmd.info "complete" ~doc:"Complete a partial transformation (Section 6).")
    Term.(const run $ file_arg $ rows $ verify)

(* ---- run ---- *)

let run_cmd =
  let run file n =
    let ctx = load file in
    let store = Interp.run ctx.Inl.program ~params:[ ("N", n) ] in
    let cells = Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] in
    List.iter
      (fun ((name, idx), v) ->
        Printf.printf "%s(%s) = %.6g\n" name (String.concat "," (List.map string_of_int idx)) v)
      (List.sort compare cells);
    0
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret the program and dump the final array contents.")
    Term.(const run $ file_arg $ nparam)

let () =
  let doc = "transformations for imperfectly nested loops (Kodukula-Pingali, SC'96)" in
  let info = Cmd.info "inltool" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ show_cmd; deps_cmd; apply_cmd; complete_cmd; run_cmd ]))
