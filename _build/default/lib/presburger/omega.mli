(** Exact elimination of integer variables from affine constraint systems —
    the role played by the Omega tool-kit (Pugh [11]) in the paper's
    dependence analysis (Section 3).

    The engine is integer-exact Fourier-Motzkin: equalities are removed by
    substitution (using Pugh's symmetric-modulo trick when no unit
    coefficient is available), and inequality elimination distinguishes
    the real shadow from the dark shadow, enumerating splinters when they
    differ.  Because existential integer quantification does not preserve
    conjunctive form, projections return a {e disjunction} of systems. *)

exception Blowup
(** Raised when a projection exceeds the internal disjunct budget. *)

val satisfiable : System.t -> bool

val project : System.t -> keep:(string -> bool) -> System.t list
(** [project sys ~keep] is a list of systems, mentioning only variables
    satisfying [keep], whose union of solution sets equals the projection
    of [sys]'s solutions.  The empty list means unsatisfiable. *)

val implied_interval : System.t -> string -> Interval.t
(** Tightest integer interval containing the values of the variable over
    all solutions of the system (the hull across disjuncts); an empty
    interval when the system is unsatisfiable. *)

val implies : System.t -> Constr.t -> bool
(** [implies sys c]: every integer solution of [sys] satisfies [c]. *)

val fresh_var : unit -> string
(** Fresh auxiliary variable name (reserved ["$w%d"] namespace). *)
