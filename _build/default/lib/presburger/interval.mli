(** Integer intervals with infinite endpoints.

    These play two roles: the result type of variable-bound queries on
    constraint systems, and the entries of dependence distance/direction
    vectors — a strict generalization of the classical
    [{d, +, -, *}] abstraction: [d] is [[d,d]], [+] is [[1,oo)], [-] is
    [(-oo,-1]] and [*] is [(-oo,oo)]. *)

module Mpz = Inl_num.Mpz

type bound = NegInf | Fin of Mpz.t | PosInf
type t = { lo : bound; hi : bound }

val make : bound -> bound -> t
val point : Mpz.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
val top : t
(** [(-oo, oo)] — the [*] direction. *)

val plus : t
(** [[1, oo)] — the [+] direction. *)

val minus : t
(** [(-oo, -1]] — the [-] direction. *)

val zero : t
val is_empty : t -> bool
val is_point : t -> Mpz.t option
val contains : t -> Mpz.t -> bool
val contains_zero : t -> bool

val definitely_positive : t -> bool
(** Every element is [>= 1]. *)

val definitely_negative : t -> bool
val definitely_zero : t -> bool
val definitely_nonneg : t -> bool

val add : t -> t -> t
val neg : t -> t
val scale : Mpz.t -> t -> t
(** Multiplication by an exact integer constant; scaling by zero yields
    the point interval [0]. *)

val hull : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool

val to_symbol : t -> string
(** Renders in the paper's notation when possible: a constant, ["+"],
    ["-"], ["*"], ["+0"] (nonnegative), ["-0"] (nonpositive) or
    ["[l,h]"]. *)

val pp : Format.formatter -> t -> unit

val bound_compare_lo : bound -> bound -> int
val bound_compare_hi : bound -> bound -> int
