lib/presburger/omega.mli: Constr Interval System
