lib/presburger/omega.ml: Constr Inl_num Interval Linexpr List Option Printf String System
