lib/presburger/system.ml: Constr Format Inl_num List Printf Set String
