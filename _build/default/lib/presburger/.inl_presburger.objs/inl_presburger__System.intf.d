lib/presburger/system.mli: Constr Format Inl_num Linexpr
