lib/presburger/interval.ml: Format Inl_num Printf
