lib/presburger/interval.mli: Format Inl_num
