lib/presburger/constr.mli: Format Inl_num Linexpr
