lib/presburger/linexpr.ml: Format Inl_num List Map String
