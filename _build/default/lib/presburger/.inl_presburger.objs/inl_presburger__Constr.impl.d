lib/presburger/constr.ml: Format Inl_num Linexpr
