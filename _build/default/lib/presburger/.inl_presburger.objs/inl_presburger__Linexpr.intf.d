lib/presburger/linexpr.mli: Format Inl_num Map
