module Mpz = Inl_num.Mpz

type bound = NegInf | Fin of Mpz.t | PosInf
type t = { lo : bound; hi : bound }

(* Comparison treating the bound as a lower endpoint (NegInf smallest) —
   and symmetrically for upper endpoints.  The two agree except that they
   are distinguished for documentation at call sites. *)
let bound_compare_lo a b =
  match (a, b) with
  | NegInf, NegInf | PosInf, PosInf -> 0
  | NegInf, _ -> -1
  | _, NegInf -> 1
  | PosInf, _ -> 1
  | _, PosInf -> -1
  | Fin x, Fin y -> Mpz.compare x y

let bound_compare_hi = bound_compare_lo

let make lo hi = { lo; hi }
let point v = { lo = Fin v; hi = Fin v }
let of_int n = point (Mpz.of_int n)
let of_ints a b = { lo = Fin (Mpz.of_int a); hi = Fin (Mpz.of_int b) }
let top = { lo = NegInf; hi = PosInf }
let plus = { lo = Fin Mpz.one; hi = PosInf }
let minus = { lo = NegInf; hi = Fin Mpz.minus_one }
let zero = point Mpz.zero

let is_empty t =
  match (t.lo, t.hi) with
  | Fin a, Fin b -> Mpz.compare a b > 0
  | PosInf, _ | _, NegInf -> true
  | _ -> false

let is_point t =
  match (t.lo, t.hi) with
  | Fin a, Fin b when Mpz.equal a b -> Some a
  | _ -> None

let contains t v =
  (match t.lo with NegInf -> true | Fin a -> Mpz.compare a v <= 0 | PosInf -> false)
  && match t.hi with PosInf -> true | Fin b -> Mpz.compare v b <= 0 | NegInf -> false

let contains_zero t = contains t Mpz.zero

let definitely_positive t =
  (not (is_empty t)) && match t.lo with Fin a -> Mpz.is_positive a | PosInf -> true | NegInf -> false

let definitely_negative t =
  (not (is_empty t)) && match t.hi with Fin b -> Mpz.is_negative b | NegInf -> true | PosInf -> false

let definitely_zero t = match is_point t with Some v -> Mpz.is_zero v | None -> false

let definitely_nonneg t =
  (not (is_empty t)) && match t.lo with Fin a -> Mpz.sign a >= 0 | PosInf -> true | NegInf -> false

let badd a b =
  match (a, b) with
  | NegInf, PosInf | PosInf, NegInf -> invalid_arg "Interval: oo + -oo"
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (Mpz.add x y)

let add a b = { lo = badd a.lo b.lo; hi = badd a.hi b.hi }

let bneg = function NegInf -> PosInf | PosInf -> NegInf | Fin x -> Fin (Mpz.neg x)
let neg t = { lo = bneg t.hi; hi = bneg t.lo }

let bscale k = function
  | NegInf -> if Mpz.is_negative k then PosInf else NegInf
  | PosInf -> if Mpz.is_negative k then NegInf else PosInf
  | Fin x -> Fin (Mpz.mul k x)

let scale k t =
  if Mpz.is_zero k then point Mpz.zero
  else if Mpz.is_positive k then { lo = bscale k t.lo; hi = bscale k t.hi }
  else { lo = bscale k t.hi; hi = bscale k t.lo }

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else
    {
      lo = (if bound_compare_lo a.lo b.lo <= 0 then a.lo else b.lo);
      hi = (if bound_compare_hi a.hi b.hi >= 0 then a.hi else b.hi);
    }

let inter a b =
  {
    lo = (if bound_compare_lo a.lo b.lo >= 0 then a.lo else b.lo);
    hi = (if bound_compare_hi a.hi b.hi <= 0 then a.hi else b.hi);
  }

let equal a b =
  if is_empty a && is_empty b then true
  else bound_compare_lo a.lo b.lo = 0 && bound_compare_hi a.hi b.hi = 0

let to_symbol t =
  match is_point t with
  | Some v -> Mpz.to_string v
  | None -> (
      match (t.lo, t.hi) with
      | NegInf, PosInf -> "*"
      | Fin a, PosInf when Mpz.is_one a -> "+"
      | Fin a, PosInf when Mpz.is_zero a -> "+0"
      | NegInf, Fin b when Mpz.equal b Mpz.minus_one -> "-"
      | NegInf, Fin b when Mpz.is_zero b -> "-0"
      | Fin a, PosInf -> Printf.sprintf "[%s,oo)" (Mpz.to_string a)
      | NegInf, Fin b -> Printf.sprintf "(-oo,%s]" (Mpz.to_string b)
      | Fin a, Fin b -> Printf.sprintf "[%s,%s]" (Mpz.to_string a) (Mpz.to_string b)
      | PosInf, _ | _, NegInf -> "(empty)")

let pp fmt t = Format.pp_print_string fmt (to_symbol t)
