(* The approaches the paper argues against (Sections 1 and 4.1), built as
   comparators:

   - {!perfect_only}: the classical unimodular framework for perfectly
     nested loops, which simply cannot accept an imperfect nest;
   - {!Distribution}: turning an imperfect nest into perfect ones by loop
     distribution, legal only without backward inter-group dependences —
     and illegal on the matrix factorization codes;
   - {!Sinking}: making the nest perfect by sinking statements into the
     inner loop behind first/last-iteration guards; unsound when the
     inner loop's range can be empty (simplified Cholesky at I = N), a
     defect the direct framework does not have. *)

module Mpz = Inl_num.Mpz
module Mat = Inl_linalg.Mat
module Linexpr = Inl_presburger.Linexpr
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis

(* ---- the perfect-nest-only unimodular framework ---- *)

type perfect_verdict =
  | Not_perfect  (** the baseline cannot even represent the program *)
  | Perfect_illegal of string
  | Perfect_legal

(* For a perfect nest, the instance vectors ARE iteration vectors
   (Section 2.2), so the classical test — every transformed distance
   lexicographically positive — is the projection-free special case of
   Definition 6. *)
let perfect_only (prog : Ast.program) (t : Mat.t) : perfect_verdict =
  if not (Ast.is_perfect prog) then Not_perfect
  else begin
    let layout = Layout.of_program prog in
    let deps = Analysis.dependences layout in
    match Inl.Legality.check layout t deps with
    | Inl.Legality.Legal _ -> Perfect_legal
    | Inl.Legality.Illegal msg -> Perfect_illegal msg
  end

(* ---- loop distribution ---- *)

module Distribution = struct
  (* Distributing the single top-level loop of [prog] between children
     [at-1] and [at] runs every instance of the first group before every
     instance of the second, so it is legal iff no dependence flows from
     a second-group statement to a first-group statement. *)
  let legal (layout : Layout.t) (deps : Dep.t list) ~(at : int) : (unit, string) result =
    match layout.Layout.program.Ast.nest with
    | [ Ast.Loop l ] ->
        let group_of label =
          let si = Layout.stmt_info layout label in
          match si.Layout.path with
          | _ :: c :: _ -> if c < at then `First else `Second
          | _ -> invalid_arg "Distribution.legal: statement at unexpected depth"
        in
        if at <= 0 || at >= List.length l.Ast.body then
          invalid_arg "Distribution.legal: split point outside the loop body";
        let offender =
          List.find_opt
            (fun (d : Dep.t) -> group_of d.Dep.src = `Second && group_of d.dst = `First)
            deps
        in
        (match offender with
        | None -> Ok ()
        | Some d ->
            Error
              (Format.asprintf "dependence %a crosses backward over the split" Dep.pp d))
    | _ -> invalid_arg "Distribution.legal: program must be a single top-level loop"

  let apply (layout : Layout.t) ~(at : int) : Ast.program =
    snd (Inl.Tmat.distribute layout ~at)
end

(* ---- statement sinking ---- *)

module Sinking = struct
  (* Sink a statement that precedes a loop into that loop's first
     iteration (and one that follows it into the last iteration), making
     the pair perfectly nested.  This is the textbook construction the
     paper alludes to ("the commonly used strategy of performing
     transformations after sinking all statements into the innermost
     loop") — and it is UNSOUND when the loop's range can be empty, since
     the guarded copy then never executes.  We implement it faithfully,
     defect included; the test suite exhibits the lost iteration on
     simplified Cholesky at I = N. *)

  let sink_into_following_loop (prog : Ast.program) : (Ast.program, string) result =
    match prog.Ast.nest with
    | [ Ast.Loop outer ] -> (
        match outer.Ast.body with
        | [ Ast.Stmt s; Ast.Loop inner ] ->
            if inner.Ast.lower.Ast.combine <> `Max then Error "unexpected covering bound"
            else begin
              (* guard: var = lower bound; with several lower terms the
                 guard uses the max, which is not affine — restrict to a
                 single term *)
              match inner.Ast.lower.Ast.terms with
              | [ { Ast.num; den } ] when Mpz.is_one den ->
                  let guard =
                    Ast.Gcmp (`Eq, Linexpr.sub (Linexpr.var inner.Ast.var) num)
                  in
                  let body' = Ast.If ([ guard ], [ Ast.Stmt s ]) :: inner.Ast.body in
                  Ok
                    {
                      prog with
                      Ast.nest = [ Ast.Loop { outer with Ast.body = [ Ast.Loop { inner with Ast.body = body' } ] } ];
                    }
              | _ -> Error "inner loop lower bound is not a single integral term"
            end
        | _ -> Error "expected exactly [statement; loop] under the outer loop")
    | _ -> Error "expected a single outer loop"
end
