(** The approaches the paper argues against (Sections 1 and 4.1), as
    comparators for the evaluation:

    - {!perfect_only}: the classical unimodular framework, which cannot
      even represent an imperfect nest;
    - {!Distribution}: making nests perfect by loop distribution — legal
      only without backward inter-group dependences, hence illegal on the
      matrix factorization codes;
    - {!Sinking}: making nests perfect by sinking statements behind
      first-iteration guards — {e unsound} when the inner loop's range
      can be empty, a defect kept faithfully (the test suite exhibits the
      lost `sqrt` at [I = N] on simplified Cholesky). *)

module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout

type perfect_verdict = Not_perfect | Perfect_illegal of string | Perfect_legal

val perfect_only : Ast.program -> Mat.t -> perfect_verdict
(** Classical legality for perfectly nested loops; [Not_perfect] when the
    program is imperfectly nested (the baseline's defining limitation). *)

module Distribution : sig
  val legal : Layout.t -> Dep.t list -> at:int -> (unit, string) result
  (** Legality of splitting the single top-level loop at child [at]; the
      error names the backward dependence. *)

  val apply : Layout.t -> at:int -> Ast.program
end

module Sinking : sig
  val sink_into_following_loop : Ast.program -> (Ast.program, string) result
  (** The textbook sinking construction for the shape
      [do I { S; do J ... }]: S moves into the inner loop behind a
      first-iteration guard.  Unsound when the inner range can be empty —
      implemented faithfully, defect included. *)
end
