lib/baseline/baseline.mli: Inl_depend Inl_instance Inl_ir Inl_linalg
