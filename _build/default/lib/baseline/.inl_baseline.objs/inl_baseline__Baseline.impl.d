lib/baseline/baseline.ml: Format Inl Inl_depend Inl_instance Inl_ir Inl_linalg Inl_num Inl_presburger List
