lib/cachesim/cachesim.mli: Inl_ir
