lib/cachesim/cachesim.ml: Array Inl_interp List Printf
