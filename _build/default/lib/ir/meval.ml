(* Concrete evaluation of the affine machinery of the IR: bound terms,
   max/min bounds, guards, loop ranges.  Shared by the dynamic-instance
   enumerator (the execution-order oracle for Theorem 1) and by the
   interpreter. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
open Ast

type env = string -> int

let eval_affine (env : env) (e : affine) : int =
  Mpz.to_int (Linexpr.eval e (fun v -> Mpz.of_int (env v)))

let eval_bterm_up env { num; den } =
  let v = eval_affine env num in
  let d = Mpz.to_int den in
  if d = 1 then v else Mpz.to_int (Mpz.cdiv (Mpz.of_int v) den)

let eval_bterm_down env { num; den } =
  let v = eval_affine env num in
  let d = Mpz.to_int den in
  if d = 1 then v else Mpz.to_int (Mpz.fdiv (Mpz.of_int v) den)

(* A lower bound's terms round up (ceil), an upper bound's round down
   (floor); the combiner is whatever the bound records (max for natural
   lower bounds, min for covering union bounds, and dually for uppers). *)
let eval_bound ~(role : [ `Lower | `Upper ]) env ({ combine; terms } : bound) =
  let per_term = match role with `Lower -> eval_bterm_up | `Upper -> eval_bterm_down in
  match terms with
  | [] -> invalid_arg "Meval.eval_bound: empty bound"
  | t :: rest ->
      let comb = match combine with `Max -> max | `Min -> min in
      List.fold_left (fun acc t -> comb acc (per_term env t)) (per_term env t) rest

let eval_lower env b = eval_bound ~role:`Lower env b
let eval_upper env b = eval_bound ~role:`Upper env b

let eval_guard env = function
  | Gcmp (`Ge, e) -> eval_affine env e >= 0
  | Gcmp (`Eq, e) -> eval_affine env e = 0
  | Gdiv (d, e) -> Mpz.is_zero (Mpz.fmod (Mpz.of_int (eval_affine env e)) d)

let eval_guards env gs = List.for_all (eval_guard env) gs

(* Iterate [f] over the loop's range under [env]. *)
let iter_loop (env : env) (l : loop) (f : int -> unit) : unit =
  let lo = eval_lower env l.lower and hi = eval_upper env l.upper in
  let step = Mpz.to_int l.step in
  let i = ref lo in
  while !i <= hi do
    f !i;
    i := !i + step
  done

(* All dynamic instances in execution order, as (label, loop values
   outer-in).  The oracle for program order (Definition 2). *)
let enumerate (prog : program) ~(params : (string * int) list) : (string * int array) list =
  let out = ref [] in
  (* [bindings] holds loop and let-bound variables alike (innermost first);
     [iters] holds only the loop values, which is what an instance is. *)
  let rec go (bindings : (string * int) list) (iters : int list) nodes =
    let env v =
      match List.assoc_opt v bindings with
      | Some x -> x
      | None -> (
          match List.assoc_opt v params with
          | Some x -> x
          | None -> invalid_arg (Printf.sprintf "Meval.enumerate: unbound %s" v))
    in
    List.iter
      (function
        | Stmt s -> out := (s.label, Array.of_list (List.rev iters)) :: !out
        | If (gs, body) -> if eval_guards env gs then go bindings iters body
        | Let (v, { num; den }, body) ->
            let value = eval_affine env num in
            let q = Mpz.fdiv (Mpz.of_int value) den in
            if not (Mpz.is_zero (Mpz.fmod (Mpz.of_int value) den)) then
              invalid_arg
                (Printf.sprintf "Meval.enumerate: let %s: %d not divisible by %s" v value
                   (Mpz.to_string den));
            go ((v, Mpz.to_int q) :: bindings) iters body
        | Loop l -> iter_loop env l (fun i -> go ((l.var, i) :: bindings) (i :: iters) l.body))
      nodes
  in
  go [] [] prog.nest;
  List.rev !out
