(** Concrete evaluation of the affine machinery of the IR — bound terms,
    max/min bounds, guards, strided loop ranges — shared by the
    dynamic-instance enumerator (the execution-order oracle of
    Theorem 1's tests) and the interpreter. *)

module Mpz = Inl_num.Mpz

type env = string -> int

val eval_affine : env -> Ast.affine -> int
val eval_bterm_up : env -> Ast.bterm -> int
(** Ceiling of [num/den] — the rounding of a lower-bound term. *)

val eval_bterm_down : env -> Ast.bterm -> int
val eval_bound : role:[ `Lower | `Upper ] -> env -> Ast.bound -> int
val eval_lower : env -> Ast.bound -> int
val eval_upper : env -> Ast.bound -> int
val eval_guard : env -> Ast.guard -> bool
val eval_guards : env -> Ast.guard list -> bool
val iter_loop : env -> Ast.loop -> (int -> unit) -> unit

val enumerate : Ast.program -> params:(string * int) list -> (string * int array) list
(** All dynamic instances in execution order, as (label, loop values
    outer-in).
    @raise Invalid_argument on unbound variables or inexact [Let]
    divisions. *)
