lib/ir/parser.ml: Ast Char Float Format Inl_num Inl_presburger List Printf String
