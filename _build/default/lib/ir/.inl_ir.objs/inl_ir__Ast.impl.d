lib/ir/ast.ml: Format Hashtbl Inl_num Inl_presburger List Printf String
