lib/ir/meval.mli: Ast Inl_num
