lib/ir/meval.ml: Array Ast Inl_num Inl_presburger List Printf
