lib/ir/pp.ml: Ast Float Format Inl_num Inl_presburger
