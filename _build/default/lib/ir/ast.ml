(* Abstract syntax for imperfectly nested loop programs (Section 2).

   Internal nodes are loops, leaves are atomic assignment statements; the
   left-to-right order of children is sequential execution order.  Source
   programs use unit steps and no guards; code generation (Section 5)
   additionally produces strided loops and guarded bodies (the singular-loop
   conditions of Section 5.5). *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr

type affine = Linexpr.t

(* One term of a loop bound: [num/den] with [den >= 1].  A lower bound
   rounds up, an upper bound rounds down; source programs always have
   [den = 1]. *)
type bterm = { num : affine; den : Mpz.t }

(* A loop bound combines its terms with max or min.  Source programs use
   the natural combiners (a lower bound is a max, an upper bound a min);
   code generation may emit the opposite combiner for a loop shared by
   several statements, whose range must cover the union of the statements'
   ranges (spurious iterations are discarded by per-statement guards). *)
type bound = { combine : [ `Max | `Min ]; terms : bterm list }

type aref = { array : string; index : affine list }

type binop = Add | Sub | Mul | Div

type expr =
  | Eref of aref
  | Econst of float
  | Evar of string (* loop variable or symbolic parameter *)
  | Ebin of binop * expr * expr
  | Ecall of string * expr list (* intrinsic or uninterpreted function *)

type stmt = { label : string; lhs : aref; rhs : expr }

type guard =
  | Gcmp of [ `Ge | `Eq ] * affine (* e >= 0  or  e = 0 *)
  | Gdiv of Mpz.t * affine (* den divides e *)

type node =
  | Loop of loop
  | If of guard list * node list (* conjunction of guards *)
  | Let of string * bterm * node list
    (* [Let (v, e/d, body)]: bind [v] to the exact quotient [e/d] (the
       enclosing guards guarantee divisibility); produced by code
       generation to reconstruct original iterators *)
  | Stmt of stmt

and loop = {
  var : string;
  lower : bound;
  upper : bound;
  step : Mpz.t; (* >= 1 *)
  body : node list;
}

type program = { params : string list; nest : node list }

(* A path identifies a node: the sequence of child indices from the root
   of the forest.  [] is the (virtual) root. *)
type path = int list

let bterm e = { num = e; den = Mpz.one }
let bterm_int n = bterm (Linexpr.of_int n)
let bterm_var v = bterm (Linexpr.var v)
let lower_bound terms = { combine = `Max; terms }
let upper_bound terms = { combine = `Min; terms }

let simple_loop var lo hi body =
  Loop { var; lower = lower_bound [ lo ]; upper = upper_bound [ hi ]; step = Mpz.one; body }

(* ---- traversal ---- *)

let rec node_at_exn (nest : node list) (p : path) : node =
  match p with
  | [] -> invalid_arg "Ast.node_at_exn: empty path denotes the forest root"
  | [ i ] -> List.nth nest i
  | i :: rest -> (
      match List.nth nest i with
      | Loop l -> node_at_exn l.body rest
      | If (_, body) | Let (_, _, body) -> node_at_exn body rest
      | Stmt _ -> invalid_arg "Ast.node_at_exn: path descends into a statement")

(* All statements with their paths, in syntactic (depth-first, left-right)
   order. *)
let stmts_with_paths (prog : program) : (path * stmt) list =
  let acc = ref [] in
  let rec go prefix i = function
    | [] -> ()
    | n :: rest ->
        let p = prefix @ [ i ] in
        (match n with
        | Stmt s -> acc := (p, s) :: !acc
        | Loop l -> go p 0 l.body
        | If (_, body) | Let (_, _, body) -> go p 0 body);
        go prefix (i + 1) rest
  in
  go [] 0 prog.nest;
  List.rev !acc

let find_stmt_exn prog label =
  match List.find_opt (fun (_, s) -> String.equal s.label label) (stmts_with_paths prog) with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Ast.find_stmt_exn: no statement %s" label)

(* Loops enclosing the node at [p], outermost first, as (path, loop). *)
let loops_enclosing (prog : program) (p : path) : (path * loop) list =
  let rec go nest prefix = function
    | [] -> []
    | i :: rest -> (
        let here = prefix @ [ i ] in
        match List.nth nest i with
        | Stmt _ -> []
        | If (_, body) | Let (_, _, body) -> go body here rest
        | Loop l -> if rest = [] then [] else (here, l) :: go l.body here rest)
  in
  go prog.nest [] p

(* Syntactic order of Definition 1: depth-first positions compare as the
   paths do lexicographically. *)
let syntactic_compare (p1 : path) (p2 : path) = compare p1 p2

let rec expr_arrays acc = function
  | Eref r -> r.array :: List.fold_left (fun a _ -> a) acc r.index
  | Econst _ | Evar _ -> acc
  | Ebin (_, a, b) -> expr_arrays (expr_arrays acc a) b
  | Ecall (_, args) -> List.fold_left expr_arrays acc args

let arrays (prog : program) : string list =
  stmts_with_paths prog
  |> List.fold_left
       (fun acc (_, s) -> expr_arrays (s.lhs.array :: acc) s.rhs)
       []
  |> List.sort_uniq String.compare

(* Loop variables bound anywhere in the program. *)
let loop_vars (prog : program) : string list =
  let acc = ref [] in
  let rec go = function
    | Stmt _ -> ()
    | If (_, body) | Let (_, _, body) -> List.iter go body
    | Loop l ->
        acc := l.var :: !acc;
        List.iter go l.body
  in
  List.iter go prog.nest;
  List.sort_uniq String.compare !acc

(* ---- validation ---- *)

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let validate (prog : program) : unit =
  let seen_labels = Hashtbl.create 16 in
  let check_affine_scope scope e what =
    List.iter
      (fun v ->
        if not (List.mem v scope || List.mem v prog.params) then
          invalid "%s mentions %s, which is neither an enclosing loop variable nor a parameter"
            what v)
      (Linexpr.vars e)
  in
  let rec go scope = function
    | Stmt s ->
        if Hashtbl.mem seen_labels s.label then invalid "duplicate statement label %s" s.label;
        Hashtbl.add seen_labels s.label ();
        List.iter
          (fun e -> check_affine_scope scope e (Printf.sprintf "subscript of %s in %s" s.lhs.array s.label))
          s.lhs.index;
        let rec chk = function
          | Eref r -> List.iter (fun e -> check_affine_scope scope e (Printf.sprintf "subscript of %s in %s" r.array s.label)) r.index
          | Econst _ -> ()
          | Evar v ->
              if not (List.mem v scope || List.mem v prog.params) then
                invalid "statement %s reads unbound variable %s" s.label v
          | Ebin (_, a, b) ->
              chk a;
              chk b
          | Ecall (_, args) -> List.iter chk args
        in
        chk s.rhs
    | If (gs, body) ->
        List.iter
          (function
            | Gcmp (_, e) -> check_affine_scope scope e "guard"
            | Gdiv (d, e) ->
                if Mpz.sign d <= 0 then invalid "guard divisor must be positive";
                check_affine_scope scope e "guard")
          gs;
        List.iter (go scope) body
    | Let (v, { num; den }, body) ->
        if List.mem v scope then invalid "let-bound %s shadows an enclosing loop" v;
        if Mpz.sign den <= 0 then invalid "let %s has a non-positive divisor" v;
        check_affine_scope scope num (Printf.sprintf "definition of %s" v);
        List.iter (go (v :: scope)) body
    | Loop l ->
        if List.mem l.var scope then invalid "loop variable %s shadows an enclosing loop" l.var;
        if List.mem l.var prog.params then invalid "loop variable %s shadows a parameter" l.var;
        if Mpz.sign l.step <= 0 then invalid "loop %s has non-positive step" l.var;
        if l.lower.terms = [] || l.upper.terms = [] then invalid "loop %s lacks bounds" l.var;
        List.iter
          (fun { num; den } ->
            if Mpz.sign den <= 0 then invalid "loop %s has a non-positive bound divisor" l.var;
            check_affine_scope scope num (Printf.sprintf "bound of loop %s" l.var))
          (l.lower.terms @ l.upper.terms);
        List.iter (go (l.var :: scope)) l.body
  in
  List.iter (go []) prog.nest

(* True when every statement is nested inside every loop on its root path
   and the nest is a single chain of loops (Section 1's "perfectly
   nested"). *)
let is_perfect (prog : program) : bool =
  let rec go = function
    | [ Loop l ] -> go l.body
    | [ Stmt _ ] -> true
    | nodes -> List.for_all (function Stmt _ -> true | _ -> false) nodes && List.length nodes >= 1
  in
  match prog.nest with [ Loop _ ] -> go prog.nest | _ -> false

(* ---- variable renaming (used by loop fusion) ---- *)

let rec rename_var_expr old_v new_v = function
  | Evar v when String.equal v old_v -> Evar new_v
  | (Evar _ | Econst _) as e -> e
  | Eref r -> Eref { r with index = List.map (fun a -> rename_affine_var old_v new_v a) r.index }
  | Ebin (op, a, b) -> Ebin (op, rename_var_expr old_v new_v a, rename_var_expr old_v new_v b)
  | Ecall (f, args) -> Ecall (f, List.map (rename_var_expr old_v new_v) args)

and rename_affine_var old_v new_v (e : affine) : affine =
  Linexpr.rename (fun v -> if String.equal v old_v then new_v else v) e

(* Rename free occurrences of [old_v] to [new_v]; binders of [old_v]
   shadow (their subtrees are left alone). *)
let rec rename_var_node old_v new_v node =
  let ra = rename_affine_var old_v new_v in
  match node with
  | Stmt s ->
      Stmt
        {
          s with
          lhs = { s.lhs with index = List.map ra s.lhs.index };
          rhs = rename_var_expr old_v new_v s.rhs;
        }
  | If (gs, body) ->
      let g = function Gcmp (k, e) -> Gcmp (k, ra e) | Gdiv (d, e) -> Gdiv (d, ra e) in
      If (List.map g gs, List.map (rename_var_node old_v new_v) body)
  | Let (v, { num; den }, body) ->
      let body' = if String.equal v old_v then body else List.map (rename_var_node old_v new_v) body in
      Let (v, { num = ra num; den }, body')
  | Loop l ->
      let bnd (b : bound) = { b with terms = List.map (fun t -> { t with num = ra t.num }) b.terms } in
      let body' =
        if String.equal l.var old_v then l.body else List.map (rename_var_node old_v new_v) l.body
      in
      Loop { l with lower = bnd l.lower; upper = bnd l.upper; body = body' }
