(** Pretty-printing of loop-nest programs in the paper's pseudo-code
    notation; {!Inl_ir.Parser} accepts everything printed for source
    programs (generated programs may additionally contain [if]/[let]
    constructs and strided loops). *)

val pp_affine : Format.formatter -> Ast.affine -> unit
val pp_aref : Format.formatter -> Ast.aref -> unit
val pp_expr : ?ctx:int -> Format.formatter -> Ast.expr -> unit
val pp_guard : Format.formatter -> Ast.guard -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_node : Format.formatter -> Ast.node -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val node_to_string : Ast.node -> string
