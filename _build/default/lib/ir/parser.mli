(** Parser for the paper's pseudo-code surface syntax.

    {[
      params N
      do I = 1..N
        S1: A(I) = sqrt(A(I))
        do J = I+1..N
          S2: A(J) = A(J) / A(I)
        enddo
      enddo
    ]}

    Notes on the dialect:
    - [enddo] and [end do] both close a loop;
    - statement labels ([S1:]) are optional and generated when missing;
    - array references may use [A(i,j)] or [A[i][j]] syntax; in right-hand
      sides, [name(args)] is an array reference when [name] is written
      anywhere in the program (or indexed with brackets), and an
      uninterpreted function call otherwise;
    - a lower bound may be [max(e1, e2, ...)], an upper bound [min(...)];
    - identifiers free in bounds or subscripts are symbolic parameters,
      declared explicitly with [params] or inferred;
    - [!] starts a comment running to end of line. *)

val parse : string -> (Ast.program, string) result
(** Parses and validates a program. *)

val parse_exn : string -> Ast.program
(** @raise Failure with a diagnostic on malformed input. *)

val linearize : Ast.expr -> Ast.affine option
(** Interprets an expression tree as an affine form, when possible. *)
