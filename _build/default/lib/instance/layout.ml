module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast

type pos_kind = Ploop of Ast.path * string | Pedge of Ast.path * int

type padding = Diagonal | Zero

type stmt_info = {
  label : string;
  path : Ast.path;
  stmt : Ast.stmt;
  loops : (Ast.path * Ast.loop) list;
  embedding : Mat.t * Vec.t;
  loop_pos : int list;
  padded_pos : int list;
}

type t = {
  program : Ast.program;
  padding : padding;
  positions : pos_kind array;
  stmts : stmt_info list;
}

let is_prefix (p : Ast.path) (q : Ast.path) =
  let rec go p q =
    match (p, q) with [], _ -> true | _, [] -> false | a :: p', b :: q' -> a = b && go p' q'
  in
  go p q

(* Positions contributed by the children of the node at [parent] (R,
   Equation 1): edge labels right-to-left when there are >= 2 children,
   then the children's blocks right-to-left. *)
let rec positions_of_children parent (children : Ast.node list) : pos_kind list =
  let m = List.length children in
  let edges =
    if m >= 2 then List.init m (fun k -> Pedge (parent, m - 1 - k)) else []
  in
  let blocks =
    List.rev children
    |> List.mapi (fun k child -> positions_of_node (parent @ [ m - 1 - k ]) child)
    |> List.concat
  in
  edges @ blocks

and positions_of_node path : Ast.node -> pos_kind list = function
  | Ast.Stmt _ -> []
  | Ast.If _ | Ast.Let _ ->
      invalid_arg "Layout: If/Let nodes are code-generation output, not source"
  | Ast.Loop l -> Ploop (path, l.var) :: positions_of_children path l.body

let build_stmt_info padding (positions : pos_kind array) (path, (stmt : Ast.stmt)) loops =
  let n = Array.length positions in
  let k = List.length loops in
  let loop_paths = List.map fst loops in
  let a = Mat.make n k in
  let b = Vec.zero n in
  let loop_pos = ref [] and padded_pos = ref [] in
  Array.iteri
    (fun idx pos ->
      match pos with
      | Pedge (q, c) -> if is_prefix (q @ [ c ]) path then b.(idx) <- Mpz.one
      | Ploop (q, _) -> (
          (* is q one of the statement's own loops? *)
          match List.find_opt (fun (j, lp) -> ignore j; lp = q) (List.mapi (fun j lp -> (j, lp)) loop_paths) with
          | Some (j, _) ->
              Mat.set a idx j Mpz.one;
              loop_pos := idx :: !loop_pos
          | None ->
              padded_pos := idx :: !padded_pos;
              (match padding with
              | Zero -> ()
              | Diagonal ->
                  (* deepest enclosing loop of the statement that is an
                     ancestor of q: its label is what procedure M copies *)
                  let best = ref (-1) in
                  List.iteri (fun j lp -> if is_prefix lp q then best := j) loop_paths;
                  if !best >= 0 then Mat.set a idx !best Mpz.one)))
    positions;
  {
    label = stmt.label;
    path;
    stmt;
    loops;
    embedding = (a, b);
    loop_pos = List.rev !loop_pos;
    padded_pos = List.rev !padded_pos;
  }

let of_program ?(padding = Diagonal) (program : Ast.program) : t =
  let positions = Array.of_list (positions_of_children [] program.nest) in
  let stmts =
    Ast.stmts_with_paths program
    |> List.map (fun (path, stmt) ->
           let loops = Ast.loops_enclosing program path in
           build_stmt_info padding positions (path, stmt) loops)
  in
  { program; padding; positions; stmts }

let size t = Array.length t.positions

let stmt_info t label =
  match List.find_opt (fun si -> String.equal si.label label) t.stmts with
  | Some si -> si
  | None -> raise Not_found

let position_of_loop t path =
  let found = ref (-1) in
  Array.iteri
    (fun idx pos -> match pos with Ploop (q, _) when q = path -> found := idx | _ -> ())
    t.positions;
  if !found < 0 then raise Not_found else !found

let loop_positions t =
  Array.to_list t.positions
  |> List.mapi (fun i p -> (i, p))
  |> List.filter_map (function i, Ploop _ -> Some i | _, Pedge _ -> None)

let instance_vector t label (iters : int array) =
  let si = stmt_info t label in
  let a, b = si.embedding in
  if Array.length iters <> Mat.cols a then
    invalid_arg
      (Printf.sprintf "Layout.instance_vector: %s expects %d loop values, got %d" label
         (Mat.cols a) (Array.length iters));
  Vec.add (Mat.apply a (Vec.of_int_array iters)) b

let common_loops _t (s1 : stmt_info) (s2 : stmt_info) =
  List.filter (fun (p, _) -> List.exists (fun (q, _) -> q = p) s2.loops) s1.loops

let common_loop_positions t s1 s2 =
  List.map (fun (p, _) -> position_of_loop t p) (common_loops t s1 s2)

let l_inverse t (iv : Vec.t) : (string * int array) option =
  (* Follow the 1-labeled edges from the root; single-child nodes have no
     edge position and descend unconditionally. *)
  let edge_label q c =
    let idx = ref None in
    Array.iteri
      (fun i pos -> match pos with Pedge (q', c') when q' = q && c' = c -> idx := Some i | _ -> ())
      t.positions;
    match !idx with Some i -> Some iv.(i) | None -> None
  in
  let rec descend (path : Ast.path) (nodes : Ast.node list) : Ast.path option =
    let m = List.length nodes in
    let pick =
      if m = 1 then Some 0
      else begin
        let ones =
          List.filteri
            (fun c _ ->
              match edge_label path c with Some l -> Mpz.is_one l | None -> false)
            (List.init m Fun.id)
        in
        match ones with [ c ] -> Some c | _ -> None
      end
    in
    match pick with
    | None -> None
    | Some c -> (
        match List.nth nodes c with
        | Ast.Stmt _ -> Some (path @ [ c ])
        | Ast.Loop l -> descend (path @ [ c ]) l.body
        | Ast.If (_, body) | Ast.Let (_, _, body) -> descend (path @ [ c ]) body)
  in
  match descend [] t.program.nest with
  | None -> None
  | Some path -> (
      match List.find_opt (fun si -> si.path = path) t.stmts with
      | None -> None
      | Some si ->
          let iters =
            List.map (fun (lp, _) -> Mpz.to_int iv.(position_of_loop t lp)) si.loops
          in
          Some (si.label, Array.of_list iters))

let pp_positions fmt t =
  Format.pp_open_vbox fmt 0;
  Array.iteri
    (fun i pos ->
      match pos with
      | Ploop (p, v) ->
          Format.fprintf fmt "%d: loop %s at [%s]@," i v
            (String.concat ";" (List.map string_of_int p))
      | Pedge (p, c) ->
          Format.fprintf fmt "%d: edge [%s] -> child %d@," i
            (String.concat ";" (List.map string_of_int p))
            c)
    t.positions;
  Format.pp_close_box fmt ()
