(** Instance-vector layout of a program (Section 2).

    The layout fixes, once per program, the meaning of every coordinate of
    the instance vectors: each position is either a loop node or an edge
    label, in the order of the paper's collection function [R]
    (Equation 1): a node contributes its own label, then the labels of the
    edges to its children in {e right-to-left} order (omitted entirely for
    single-child nodes — the single-edge optimization of Section 2.2),
    then the blocks of its children, again right-to-left.

    Every statement's instance vectors are an affine function of its
    iteration vector: [iv = A_S . i + b_S], where [A_S] is a 0/1 matrix
    (with rows for padded positions realizing the paper's diagonal
    embedding) and [b_S] holds the 0/1 edge labels.  This affine view is
    what makes per-statement transformations computable (Section 5.4). *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast

type pos_kind =
  | Ploop of Ast.path * string  (** loop node at path, with its variable *)
  | Pedge of Ast.path * int  (** edge from node at path to its [i]-th child *)

type padding = Diagonal | Zero
(** How off-path loop positions are labeled by procedure [M]: [Diagonal]
    is the paper's choice (nearest labeled ancestor); [Zero] is the
    alternative embedding mentioned at the end of Section 2.1 (kept for
    the ablation study). *)

type stmt_info = {
  label : string;
  path : Ast.path;
  stmt : Ast.stmt;
  loops : (Ast.path * Ast.loop) list;  (** enclosing loops, outermost first *)
  embedding : Mat.t * Vec.t;  (** [A_S], [b_S] *)
  loop_pos : int list;  (** positions of the statement's own loops, outer-in *)
  padded_pos : int list;  (** padded positions (Definition 4) *)
}

type t = {
  program : Ast.program;
  padding : padding;
  positions : pos_kind array;
  stmts : stmt_info list;  (** in syntactic order *)
}

val of_program : ?padding:padding -> Ast.program -> t
(** @raise Invalid_argument on programs containing [If] nodes (layouts are
    defined for source programs). *)

val size : t -> int
val stmt_info : t -> string -> stmt_info
(** Look up by statement label. @raise Not_found *)

val position_of_loop : t -> Ast.path -> int
(** @raise Not_found if the path is not a loop node. *)

val loop_positions : t -> int list
(** All loop positions, in layout order. *)

val instance_vector : t -> string -> int array -> Vec.t
(** [instance_vector layout label iters] is [L] applied to the dynamic
    instance of the labeled statement at the given loop values
    (outer-in). *)

val common_loops : t -> stmt_info -> stmt_info -> (Ast.path * Ast.loop) list
(** Loops enclosing both statements, outermost first. *)

val common_loop_positions : t -> stmt_info -> stmt_info -> int list

val l_inverse : t -> Vec.t -> (string * int array) option
(** [L^-1] (Definition 5): recover the statement and its loop values from
    an instance vector; [None] if the edge labels do not describe a
    root-to-statement path. *)

val pp_positions : Format.formatter -> t -> unit
