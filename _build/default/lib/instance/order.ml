(* Program order on dynamic instances (Definition 2): compare the loop
   values of the common loops lexicographically, breaking ties by
   syntactic order.  Because common loops are a prefix of both statements'
   loop lists, the comparison reads a prefix of each iteration vector.

   This is the oracle against which Theorem 1 (instance vectors order
   exactly like execution) is tested. *)

module Ast = Inl_ir.Ast

type instance = { label : string; iters : int array }

let make label iters = { label; iters }

(* [compare layout a b] orders two dynamic instances by Definition 2. *)
let compare (layout : Layout.t) (a : instance) (b : instance) : int =
  let sa = Layout.stmt_info layout a.label and sb = Layout.stmt_info layout b.label in
  let ncommon = List.length (Layout.common_loops layout sa sb) in
  let rec cmp i =
    if i >= ncommon then Ast.syntactic_compare sa.path sb.path
    else
      let c = Stdlib.compare a.iters.(i) b.iters.(i) in
      if c <> 0 then c else cmp (i + 1)
  in
  cmp 0
