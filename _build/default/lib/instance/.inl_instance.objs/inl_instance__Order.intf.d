lib/instance/order.mli: Layout
