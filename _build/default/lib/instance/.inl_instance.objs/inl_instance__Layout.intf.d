lib/instance/layout.mli: Format Inl_ir Inl_linalg Inl_num
