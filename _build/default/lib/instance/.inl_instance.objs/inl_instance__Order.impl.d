lib/instance/order.ml: Array Inl_ir Layout List Stdlib
