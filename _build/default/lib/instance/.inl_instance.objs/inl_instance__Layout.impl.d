lib/instance/layout.ml: Array Format Fun Inl_ir Inl_linalg Inl_num List Printf String
