(** Program order on dynamic instances (Definition 2): compare the loop
    values of the common loops lexicographically, breaking ties by
    syntactic order.  The oracle against which Theorem 1 (instance
    vectors order exactly like execution) is tested. *)

type instance = { label : string; iters : int array }

val make : string -> int array -> instance

val compare : Layout.t -> instance -> instance -> int
(** Total order on the dynamic instances of one program. *)
