lib/interp/interp.mli: Hashtbl Inl_ir
