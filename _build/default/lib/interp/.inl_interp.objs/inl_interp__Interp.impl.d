lib/interp/interp.ml: Float Hashtbl Inl_ir Inl_num Int64 List Printf String
