module Mpz = Inl_num.Mpz

(* Elementary column operations, applied simultaneously to the working
   matrix and to the unimodular accumulator. *)

let swap_cols m j k =
  Array.iter
    (fun r ->
      let t = r.(j) in
      r.(j) <- r.(k);
      r.(k) <- t)
    m

let negate_col m j = Array.iter (fun r -> r.(j) <- Mpz.neg r.(j)) m

(* col_j <- col_j + f * col_k *)
let addmul_col m j f k =
  Array.iter (fun r -> r.(j) <- Mpz.add r.(j) (Mpz.mul f r.(k))) m

let decompose (a : Mat.t) =
  let n = Mat.rows a in
  if Mat.cols a <> n || not (Gauss.is_nonsingular a) then
    invalid_arg "Hermite.decompose: need a square non-singular matrix";
  let h = Mat.copy a in
  let u = Mat.identity n in
  for i = 0 to n - 1 do
    (* Make h.(i).(j) = 0 for all j > i by gcd-style column reduction. *)
    let continue_ = ref true in
    while !continue_ do
      (* find column with smallest non-zero |h_i j| among j >= i *)
      let best = ref (-1) in
      for j = i to n - 1 do
        if not (Mpz.is_zero h.(i).(j)) then
          if !best < 0 || Mpz.compare (Mpz.abs h.(i).(j)) (Mpz.abs h.(i).(!best)) < 0 then best := j
      done;
      assert (!best >= 0);
      if !best <> i then begin
        swap_cols h i !best;
        swap_cols u i !best
      end;
      let others = ref false in
      for j = i + 1 to n - 1 do
        if not (Mpz.is_zero h.(i).(j)) then begin
          others := true;
          let q = Mpz.fdiv h.(i).(j) h.(i).(i) in
          addmul_col h j (Mpz.neg q) i;
          addmul_col u j (Mpz.neg q) i
        end
      done;
      (* after the reduction pass, remaining non-zeros in j > i are smaller
         remainders; loop until they vanish *)
      let done_ = ref true in
      for j = i + 1 to n - 1 do
        if not (Mpz.is_zero h.(i).(j)) then done_ := false
      done;
      ignore !others;
      if !done_ then continue_ := false
    done;
    if Mpz.is_negative h.(i).(i) then begin
      negate_col h i;
      negate_col u i
    end;
    (* reduce earlier columns in this row into [0, h_ii) *)
    for j = 0 to i - 1 do
      let q = Mpz.fdiv h.(i).(j) h.(i).(i) in
      if not (Mpz.is_zero q) then begin
        addmul_col h j (Mpz.neg q) i;
        addmul_col u j (Mpz.neg q) i
      end
    done
  done;
  (h, u)

let completion rows n =
  List.iter (fun r -> if Vec.dim r <> n then invalid_arg "Hermite.completion: bad width") rows;
  let base = Array.of_list rows in
  if Gauss.rank base <> Array.length base then
    invalid_arg "Hermite.completion: rows are dependent";
  let m = ref base in
  for i = 0 to n - 1 do
    if Array.length !m < n then begin
      let cand = Mat.append_row !m (Vec.unit n i) in
      if Gauss.rank cand = Array.length cand then m := cand
    end
  done;
  if Array.length !m <> n then invalid_arg "Hermite.completion: could not complete";
  !m
