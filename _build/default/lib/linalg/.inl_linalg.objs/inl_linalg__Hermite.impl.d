lib/linalg/hermite.ml: Array Gauss Inl_num List Mat Vec
