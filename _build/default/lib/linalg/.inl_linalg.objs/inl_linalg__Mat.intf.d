lib/linalg/mat.mli: Format Inl_num Vec
