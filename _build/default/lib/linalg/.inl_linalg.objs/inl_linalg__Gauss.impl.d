lib/linalg/gauss.ml: Array Fun Inl_num List Mat Vec
