lib/linalg/vec.ml: Array Format Inl_num List Stdlib
