lib/linalg/gauss.mli: Inl_num Mat Vec
