lib/linalg/mat.ml: Array Format Inl_num List Vec
