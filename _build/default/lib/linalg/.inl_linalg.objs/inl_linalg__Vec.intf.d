lib/linalg/vec.mli: Format Inl_num
