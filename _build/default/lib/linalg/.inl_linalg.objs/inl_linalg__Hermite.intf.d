lib/linalg/hermite.mli: Mat Vec
