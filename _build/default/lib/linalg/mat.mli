(** Dense matrices over {!Inl_num.Mpz} — the representation of loop
    transformations in the paper's framework (Section 4).

    Matrices are arrays of row vectors.  All operations are exact. *)

type t = Vec.t array

val make : int -> int -> t
(** [make r c] is the [r x c] zero matrix. *)

val of_int_lists : int list list -> t
val to_int_lists : t -> int list list
val identity : int -> t
val rows : t -> int
val cols : t -> int
val copy : t -> t
val get : t -> int -> int -> Inl_num.Mpz.t
val set : t -> int -> int -> Inl_num.Mpz.t -> unit
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val add : t -> t -> t
val mul : t -> t -> t
val apply : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val equal : t -> t -> bool
val append_row : t -> Vec.t -> t
val vstack : t -> t -> t
val sub_matrix : t -> row:int -> col:int -> rows:int -> cols:int -> t

val is_permutation : t -> bool
(** Exactly one [1] in each row and column, zeros elsewhere. *)

val permutation_of_list : int list -> t
(** [permutation_of_list p] maps position [i] (old) to position [p_i] (new):
    the matrix [M] with [M.(p_i).(i) = 1], so [apply M v] places [v.(i)] at
    index [p_i]. *)

val swap_rows_matrix : int -> int -> int -> t
(** [swap_rows_matrix n i j] is the [n x n] identity with rows [i],[j]
    swapped — the paper's loop-permutation matrix for interchanging two
    loops. *)

val pp : Format.formatter -> t -> unit
