(** Column-style Hermite normal form.

    For a non-singular integer matrix [A], [decompose A] returns [(h, u)]
    with [A * u = h], [u] unimodular, and [h] lower triangular with
    positive diagonal entries and, in each row, off-diagonal entries
    reduced into [0, h_ii).

    Loop-bound generation (Lemma 3, following Li-Pingali [10]) uses the
    diagonal of [h] as the step of each generated loop when the
    non-singular per-statement transformation is not unimodular. *)

val decompose : Mat.t -> Mat.t * Mat.t
(** @raise Invalid_argument if the matrix is not square and non-singular. *)

val completion : Vec.t list -> int -> Mat.t
(** [completion rows n] extends the given linearly independent integer
    rows to a basis of Q^n: returns an [n x n] non-singular matrix whose
    first rows are [rows], the remainder chosen as unit vectors.  Used by
    the completion procedures when the unsatisfied-dependence set runs
    dry (Fig 7, step 15).
    @raise Invalid_argument if [rows] are dependent or of wrong width. *)
