(** Exact Gaussian elimination over the rationals.

    Supplies the linear-algebra queries the framework needs: the rank of a
    per-statement transformation (Section 5.4), inverses of non-singular
    per-statement transformations (Theorem 5 / Lemma 3), nullspace bases
    used both by the completion procedures and by the "parallel outermost
    loop" query of Section 7, and the expression of a singular row as a
    combination of preceding independent rows (Section 5.5). *)

module Q = Inl_num.Q

type qmat = Q.t array array

val of_mat : Mat.t -> qmat
val rank : Mat.t -> int

val inverse : Mat.t -> qmat option
(** [None] when the matrix is singular or not square. *)

val is_nonsingular : Mat.t -> bool
val is_unimodular : Mat.t -> bool
(** Square, integer, determinant +-1. *)

val determinant : Mat.t -> Inl_num.Mpz.t
(** @raise Invalid_argument if not square. *)

val apply_q : qmat -> Q.t array -> Q.t array

val nullspace : Mat.t -> Vec.t list
(** A basis of integer vectors (cleared of denominators, gcd-reduced) for
    the right nullspace [{ x | M x = 0 }]. *)

val row_nullspace : Mat.t -> Vec.t list
(** Basis for [{ x | x^T M = 0 }], i.e. the nullspace of the transpose. *)

val solve : Mat.t -> Vec.t -> Q.t array option
(** [solve m b] is some rational [x] with [m x = b], or [None] when the
    system is inconsistent. *)

val row_dependency : Mat.t -> int -> Q.t array option
(** [row_dependency m k] expresses row [k] as a rational combination of
    rows [0..k-1]: returns coefficients [c] with
    [row k = sum_i c_i * row i], or [None] when row [k] is independent of
    its predecessors. *)

val independent_row_indices : Mat.t -> int list
(** Indices of the rows kept by greedy top-down elimination: row [k] is
    kept iff it is not a linear combination of the kept rows above it —
    exactly the construction of the non-singular per-statement
    transformation (Definition 8). *)
