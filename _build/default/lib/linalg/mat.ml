module Mpz = Inl_num.Mpz

type t = Vec.t array

let make r c = Array.init r (fun _ -> Vec.zero c)
let of_int_lists rows = Array.of_list (List.map Vec.of_int_list rows)
let to_int_lists m = Array.to_list m |> List.map (fun r -> Array.to_list (Vec.to_int_array r))

let identity n =
  let m = make n n in
  for i = 0 to n - 1 do
    m.(i).(i) <- Mpz.one
  done;
  m

let rows m = Array.length m
let cols m = if rows m = 0 then 0 else Vec.dim m.(0)
let copy m = Array.map Vec.copy m
let get m i j = m.(i).(j)
let set m i j v = m.(i).(j) <- v
let row m i = m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let add a b = Array.init (rows a) (fun i -> Vec.add a.(i) b.(i))

let mul a b =
  let r = rows a and c = cols b and k = cols a in
  if k <> rows b then invalid_arg "Mat.mul: dimension mismatch";
  Array.init r (fun i ->
      Array.init c (fun j ->
          let acc = ref Mpz.zero in
          for t = 0 to k - 1 do
            acc := Mpz.add !acc (Mpz.mul a.(i).(t) b.(t).(j))
          done;
          !acc))

let apply m v =
  if cols m <> Vec.dim v then invalid_arg "Mat.apply: dimension mismatch";
  Array.init (rows m) (fun i -> Vec.dot m.(i) v)

let equal a b =
  rows a = rows b && cols a = cols b && Array.for_all2 Vec.equal a b

let append_row m v = Array.append m [| v |]
let vstack a b = Array.append a b

let sub_matrix m ~row ~col ~rows:r ~cols:c =
  Array.init r (fun i -> Array.init c (fun j -> m.(row + i).(col + j)))

let is_permutation m =
  let n = rows m in
  cols m = n
  && Array.for_all
       (fun r ->
         Array.for_all (fun x -> Mpz.is_zero x || Mpz.is_one x) r
         && Mpz.equal (Array.fold_left Mpz.add Mpz.zero r) Mpz.one)
       m
  &&
  let colsum = Array.make n 0 in
  Array.iter (fun r -> Array.iteri (fun j x -> if Mpz.is_one x then colsum.(j) <- colsum.(j) + 1) r) m;
  Array.for_all (fun s -> s = 1) colsum

let permutation_of_list p =
  let n = List.length p in
  let m = make n n in
  List.iteri (fun i pi -> m.(pi).(i) <- Mpz.one) p;
  m

let swap_rows_matrix n i j =
  let m = identity n in
  m.(i).(i) <- Mpz.zero;
  m.(j).(j) <- Mpz.zero;
  m.(i).(j) <- Mpz.one;
  m.(j).(i) <- Mpz.one;
  m

let pp fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Vec.pp)
    (Array.to_list m)
