module Mpz = Inl_num.Mpz
module Q = Inl_num.Q

type qmat = Q.t array array

let of_mat (m : Mat.t) : qmat = Array.map (Array.map Q.of_mpz) m

(* Row-reduce [m] in place to row echelon form; returns the list of pivot
   columns in order.  [cols] limits elimination to the first [cols] columns
   (useful when the matrix is augmented). *)
let echelon ?cols (m : qmat) : int list =
  let nr = Array.length m in
  let nc = if nr = 0 then 0 else Array.length m.(0) in
  let limit = match cols with Some c -> c | None -> nc in
  let pivots = ref [] in
  let r = ref 0 in
  let j = ref 0 in
  while !r < nr && !j < limit do
    (* find pivot in column !j at or below row !r *)
    let pr = ref (-1) in
    (try
       for i = !r to nr - 1 do
         if not (Q.is_zero m.(i).(!j)) then begin
           pr := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !pr >= 0 then begin
      let tmp = m.(!r) in
      m.(!r) <- m.(!pr);
      m.(!pr) <- tmp;
      let inv = Q.inv m.(!r).(!j) in
      m.(!r) <- Array.map (fun x -> Q.mul inv x) m.(!r);
      for i = 0 to nr - 1 do
        if i <> !r && not (Q.is_zero m.(i).(!j)) then begin
          let f = m.(i).(!j) in
          m.(i) <- Array.mapi (fun k x -> Q.sub x (Q.mul f m.(!r).(k))) m.(i)
        end
      done;
      pivots := !j :: !pivots;
      incr r
    end;
    incr j
  done;
  List.rev !pivots

let rank m =
  let q = of_mat m in
  List.length (echelon q)

let determinant (m : Mat.t) =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Gauss.determinant: not square";
  (* fraction-free would be nicer; rational elimination is exact anyway *)
  let q = of_mat m in
  let det = ref Q.one in
  (try
     for j = 0 to n - 1 do
       let pr = ref (-1) in
       (try
          for i = j to n - 1 do
            if not (Q.is_zero q.(i).(j)) then begin
              pr := i;
              raise Exit
            end
          done
        with Exit -> ());
       if !pr < 0 then begin
         det := Q.zero;
         raise Exit
       end;
       if !pr <> j then begin
         let tmp = q.(j) in
         q.(j) <- q.(!pr);
         q.(!pr) <- tmp;
         det := Q.neg !det
       end;
       det := Q.mul !det q.(j).(j);
       let inv = Q.inv q.(j).(j) in
       for i = j + 1 to n - 1 do
         if not (Q.is_zero q.(i).(j)) then begin
           let f = Q.mul inv q.(i).(j) in
           q.(i) <- Array.mapi (fun k x -> Q.sub x (Q.mul f q.(j).(k))) q.(i)
         end
       done
     done
   with Exit -> ());
  Q.to_mpz_exn !det

let is_nonsingular m = Mat.rows m = Mat.cols m && rank m = Mat.rows m

let is_unimodular m =
  Mat.rows m = Mat.cols m && Mpz.is_one (Mpz.abs (determinant m))

let inverse (m : Mat.t) : qmat option =
  let n = Mat.rows m in
  if Mat.cols m <> n then None
  else begin
    (* augment with identity and reduce *)
    let aug =
      Array.init n (fun i ->
          Array.init (2 * n) (fun j ->
              if j < n then Q.of_mpz (Mat.get m i j)
              else if j - n = i then Q.one
              else Q.zero))
    in
    let pivots = echelon ~cols:n aug in
    if List.length pivots <> n then None
    else Some (Array.init n (fun i -> Array.sub aug.(i) n n))
  end

let apply_q (m : qmat) (v : Q.t array) =
  Array.map
    (fun r ->
      let acc = ref Q.zero in
      Array.iteri (fun j x -> acc := Q.add !acc (Q.mul x v.(j))) r;
      !acc)
    m

(* Clear denominators of a rational vector and divide by the gcd, fixing
   the sign so the first non-zero entry is positive. *)
let integerize (v : Q.t array) : Vec.t =
  let l = Array.fold_left (fun acc q -> Mpz.lcm acc (Q.den q)) Mpz.one v in
  let iv = Array.map (fun q -> Q.to_mpz_exn (Q.mul q (Q.of_mpz l))) v in
  let g = Vec.gcd iv in
  let iv = if Mpz.is_zero g || Mpz.is_one g then iv else Array.map (fun x -> Mpz.fdiv x g) iv in
  match Vec.height iv with
  | Some h when Mpz.is_negative iv.(h) -> Vec.neg iv
  | _ -> iv

let nullspace (m : Mat.t) : Vec.t list =
  let nc = Mat.cols m in
  let q = of_mat m in
  let pivots = echelon q in
  let pivot_set = Array.make nc false in
  List.iter (fun j -> pivot_set.(j) <- true) pivots;
  let free = List.filter (fun j -> not pivot_set.(j)) (List.init nc Fun.id) in
  (* For each free column, build the basis vector: free var = 1, pivot vars
     solved from the echelon rows. *)
  let npiv = List.length pivots in
  List.map
    (fun f ->
      let v = Array.make nc Q.zero in
      v.(f) <- Q.one;
      List.iteri
        (fun r pj ->
          if r < npiv then
            (* row r: x_pj + sum_{j>pj, nonpivot} m_rj x_j = 0 *)
            v.(pj) <- Q.neg q.(r).(f))
        pivots;
      integerize v)
    free

let row_nullspace m = nullspace (Mat.transpose m)

let solve (m : Mat.t) (b : Vec.t) : Q.t array option =
  let nr = Mat.rows m and nc = Mat.cols m in
  let aug =
    Array.init nr (fun i ->
        Array.init (nc + 1) (fun j ->
            if j < nc then Q.of_mpz (Mat.get m i j) else Q.of_mpz b.(i)))
  in
  let pivots = echelon ~cols:nc aug in
  (* inconsistent iff some row is 0 .. 0 | nonzero *)
  let inconsistent =
    Array.exists
      (fun r ->
        let all0 = ref true in
        for j = 0 to nc - 1 do
          if not (Q.is_zero r.(j)) then all0 := false
        done;
        !all0 && not (Q.is_zero r.(nc)))
      aug
  in
  if inconsistent then None
  else begin
    let x = Array.make nc Q.zero in
    List.iteri
      (fun r pj -> x.(pj) <- aug.(r).(nc))
      pivots;
    Some x
  end

let row_dependency (m : Mat.t) k =
  if k = 0 then if Vec.is_zero m.(0) then Some [||] else None
  else begin
    (* solve  (rows 0..k-1)^T c = row k *)
    let sub = Array.sub m 0 k in
    let att = Mat.transpose sub in
    match solve att m.(k) with
    | None -> None
    | Some c ->
        (* verify (solve only guarantees consistency on pivot rows) *)
        let recon =
          Array.init (Vec.dim m.(k)) (fun j ->
              let acc = ref Q.zero in
              Array.iteri (fun i ci -> acc := Q.add !acc (Q.mul ci (Q.of_mpz sub.(i).(j)))) c;
              !acc)
        in
        if Array.for_all2 (fun a b -> Q.equal a (Q.of_mpz b)) recon m.(k) then Some c else None
  end

let independent_row_indices (m : Mat.t) =
  let kept = ref [] in
  Array.iteri
    (fun i _ ->
      let sub = Array.of_list (List.rev_map (fun j -> m.(j)) !kept) in
      let cand = Mat.append_row sub m.(i) in
      if rank cand > Array.length sub then kept := i :: !kept)
    m;
  List.rev !kept
