module Mpz = Inl_num.Mpz

type t = Mpz.t array

let of_int_array a = Array.map Mpz.of_int a
let of_int_list l = of_int_array (Array.of_list l)
let to_int_array v = Array.map Mpz.to_int v

let zero n = Array.make n Mpz.zero

let unit n i =
  let v = zero n in
  v.(i) <- Mpz.one;
  v

let dim = Array.length
let copy = Array.copy
let add a b = Array.init (dim a) (fun i -> Mpz.add a.(i) b.(i))
let sub a b = Array.init (dim a) (fun i -> Mpz.sub a.(i) b.(i))
let neg a = Array.map Mpz.neg a
let scale k a = Array.map (Mpz.mul k) a
let scale_int k a = scale (Mpz.of_int k) a

let dot a b =
  let acc = ref Mpz.zero in
  for i = 0 to dim a - 1 do
    acc := Mpz.add !acc (Mpz.mul a.(i) b.(i))
  done;
  !acc

let equal a b = dim a = dim b && Array.for_all2 Mpz.equal a b
let is_zero a = Array.for_all Mpz.is_zero a

let height v =
  let rec go i = if i >= dim v then None else if Mpz.is_zero v.(i) then go (i + 1) else Some i in
  go 0

let lex_compare a b =
  let n = Stdlib.min (dim a) (dim b) in
  let rec go i =
    if i >= n then compare (dim a) (dim b)
    else
      let c = Mpz.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let lex_positive v =
  match height v with None -> false | Some i -> Mpz.is_positive v.(i)

let lex_nonnegative v =
  match height v with None -> true | Some i -> Mpz.is_positive v.(i)

let gcd v = Array.fold_left Mpz.gcd Mpz.zero v

let project v idxs = Array.of_list (List.map (fun i -> v.(i)) idxs)

let concat = Array.append

let pp fmt v =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Mpz.pp)
    (Array.to_list v)
