(** Dense vectors over {!Inl_num.Mpz}.

    Instance vectors, dependence distance vectors and transformation-matrix
    rows are all small integer vectors; this module gives them exact
    arithmetic and the lexicographic tests the legality conditions of the
    paper are phrased in. *)

type t = Inl_num.Mpz.t array

val of_int_array : int array -> t
val of_int_list : int list -> t
val to_int_array : t -> int array
(** @raise Failure if an entry does not fit a native int. *)

val zero : int -> t
val unit : int -> int -> t
(** [unit n i] is the length-[n] vector with a one at index [i]. *)

val dim : t -> int
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Inl_num.Mpz.t -> t -> t
val scale_int : int -> t -> t
val dot : t -> t -> Inl_num.Mpz.t
val equal : t -> t -> bool
val is_zero : t -> bool

val height : t -> int option
(** Index of the first non-zero entry (the paper's [Height], used by the
    completion procedure of Fig 7), or [None] for the zero vector. *)

val lex_compare : t -> t -> int
val lex_positive : t -> bool
(** First non-zero entry is positive (strict lexicographic positivity). *)

val lex_nonnegative : t -> bool
(** Zero vector or lexicographically positive. *)

val gcd : t -> Inl_num.Mpz.t
(** Non-negative gcd of all entries; zero for the zero vector. *)

val project : t -> int list -> t
(** [project v idxs] keeps the entries of [v] at positions [idxs], in the
    given order. *)

val concat : t -> t -> t
val pp : Format.formatter -> t -> unit
