lib/depend/analysis.ml: Array Dep Fun Hashtbl Inl_instance Inl_ir Inl_linalg Inl_num Inl_presburger List Printf String
