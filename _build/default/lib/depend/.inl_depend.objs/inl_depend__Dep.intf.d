lib/depend/dep.mli: Format Inl_presburger
