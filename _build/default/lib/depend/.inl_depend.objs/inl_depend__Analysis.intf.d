lib/depend/analysis.mli: Dep Inl_instance Inl_ir Inl_presburger
