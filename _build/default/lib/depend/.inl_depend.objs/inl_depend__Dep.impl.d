lib/depend/dep.ml: Array Format Inl_presburger List Printf String
