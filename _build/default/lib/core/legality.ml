module Mat = Inl_linalg.Mat
module Interval = Inl_presburger.Interval
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout

type verdict =
  | Legal of { structure : Blockstruct.t; unsatisfied : Dep.t list }
  | Illegal of string

let transformed_vector (m : Mat.t) (d : Dep.t) : Interval.t array =
  Array.init (Mat.rows m) (fun i ->
      let acc = ref (Interval.point Inl_num.Mpz.zero) in
      Array.iteri
        (fun j dj -> acc := Interval.add !acc (Interval.scale (Mat.get m i j) dj))
        d.Dep.vector;
      !acc)

(* Is the interval-vector box certainly lexicographically non-negative,
   and can it be entirely zero?  Scan: a coordinate that is definitely
   positive satisfies everything after it; one that is definitely zero is
   skipped; one that spans [0, hi] may be zero, so the suffix must also
   pass; anything admitting a negative value fails. *)
type lex_class = Satisfied | Possibly_zero | Violated

let classify (p : Interval.t array) : lex_class =
  let n = Array.length p in
  let rec go i =
    if i >= n then Possibly_zero
    else begin
      let x = p.(i) in
      if Interval.definitely_zero x then go (i + 1)
      else if Interval.definitely_positive x then Satisfied
      else if Interval.definitely_nonneg x then
        (* could be zero or positive: positive settles it, zero defers to
           the suffix — so the suffix must pass on its own *)
        match go (i + 1) with Satisfied -> Satisfied | Possibly_zero -> Possibly_zero | Violated -> Violated
      else Violated
    end
  in
  go 0

let check (layout : Layout.t) (m : Mat.t) (deps : Dep.t list) : verdict =
  match Blockstruct.infer layout m with
  | Error msg -> Illegal ("block structure: " ^ msg)
  | Ok structure -> (
      let unsatisfied = ref [] in
      let offending = ref None in
      List.iter
        (fun (d : Dep.t) ->
          if !offending = None then begin
            let td = transformed_vector m d in
            let s_src = Layout.stmt_info layout d.src and s_dst = Layout.stmt_info layout d.dst in
            (* common loops in the transformed program: map old loop
               positions, then order by new position (outer-to-inner) *)
            let common_new =
              Layout.common_loop_positions layout s_src s_dst
              |> List.map (fun old_pos -> structure.Blockstruct.old_to_new.(old_pos))
              |> List.sort compare
            in
            let p = Array.of_list (List.map (fun i -> td.(i)) common_new) in
            match classify p with
            | Satisfied -> ()
            | Violated ->
                offending :=
                  Some
                    (Format.asprintf
                       "dependence %a maps to a possibly lexicographically negative vector" Dep.pp d)
            | Possibly_zero ->
                if String.equal d.src d.dst then unsatisfied := d :: !unsatisfied
                else begin
                  (* syntactic order in the new AST must carry it *)
                  let p_src = Blockstruct.map_path structure s_src.Layout.path in
                  let p_dst = Blockstruct.map_path structure s_dst.Layout.path in
                  if Inl_ir.Ast.syntactic_compare p_src p_dst >= 0 then
                    offending :=
                      Some
                        (Format.asprintf
                           "dependence %a can collapse to equal common-loop iterations, but %s \
                            does not precede %s in the transformed program"
                           Dep.pp d d.src d.dst)
                end
          end)
        deps;
      match !offending with
      | Some msg -> Illegal msg
      | None -> Legal { structure; unsatisfied = List.rev !unsatisfied })

let is_legal layout m deps = match check layout m deps with Legal _ -> true | Illegal _ -> false
