(** Transformations for imperfectly nested loops — the public API.

    This library implements Kodukula & Pingali's framework (SC 1996): a
    program's dynamic statement instances are mapped to {e instance
    vectors} ({!Inl_instance.Layout}), dependences between them are
    computed exactly and abstracted as interval vectors
    ({!Inl_depend.Analysis}), and loop transformations — permutation,
    reversal, skewing, scaling, statement alignment and reordering,
    distribution and jamming — are integer matrices acting on instance
    vectors ({!Tmat}), closed under composition.  {!Legality} implements
    Definition 6, {!Completion} the Section 6 completion procedure, and
    {!Codegen}/{!Simplify} regenerate runnable loop nests (Section 5).

    Quick start:
    {[
      let ctx = Inl.analyze_source "params N\ndo I = 1..N ... enddo" in
      let m = Inl.Tmat.interchange ctx.layout "I" "J" in
      match Inl.check ctx m with
      | Inl.Legality.Legal _ -> let p = Inl.transform_exn ctx m in ...
      | Inl.Legality.Illegal reason -> ...
    ]} *)

module Tmat = Tmat
module Blockstruct = Blockstruct
module Legality = Legality
module Perstmt = Perstmt
module Complete = Complete
module Completion = Completion
module Completion_ext = Completion_ext
module Pipeline = Pipeline
module Boundsgen = Boundsgen
module Codegen = Codegen
module Simplify = Simplify

module Ast = Inl_ir.Ast
module Parser = Inl_ir.Parser
module Pp = Inl_ir.Pp
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec

type context = { program : Ast.program; layout : Layout.t; deps : Dep.t list }

(** Parse, lay out and analyze a program. *)
let analyze ?padding (program : Ast.program) : context =
  let layout = Layout.of_program ?padding program in
  { program; layout; deps = Analysis.dependences layout }

let analyze_source ?padding (src : string) : context = analyze ?padding (Parser.parse_exn src)

let check (ctx : context) (m : Mat.t) : Legality.verdict = Legality.check ctx.layout m ctx.deps

(** Generate the transformed program for a legal matrix; [simplify]
    (default true) applies the cleanup pass of Section 5.5. *)
let transform (ctx : context) ?(simplify = true) (m : Mat.t) : (Ast.program, string) result =
  match check ctx m with
  | Legality.Illegal msg -> Error msg
  | Legality.Legal { structure; unsatisfied } ->
      let prog = Codegen.generate structure ~unsatisfied in
      Ok (if simplify then Simplify.simplify prog else prog)

let transform_exn ctx ?simplify m =
  match transform ctx ?simplify m with Ok p -> p | Error msg -> failwith msg

(** The completion procedure (Section 6): extend the given first rows to
    a full legal transformation. *)
let complete ?options (ctx : context) ~(partial : Vec.t list) : Mat.t option =
  Completion.complete ?options ctx.layout ctx.deps ~partial

(** Compose a pipeline of named transformation steps (each phrased
    against the program shape current at that step) into one matrix. *)
let pipeline (ctx : context) (steps : Pipeline.step list) : (Mat.t, string) result =
  Pipeline.compose ctx.layout steps
