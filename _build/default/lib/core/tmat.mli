(** Constructors for the transformation matrices of Section 4, phrased
    against a program's instance-vector layout.

    All constructors return square integer matrices acting on instance
    vectors (rows = transformed positions, columns = original positions);
    sequences of transformations compose by matrix product ({!compose}),
    the paper's central algebraic property. *)

module Mpz = Inl_num.Mpz
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout

val identity : Layout.t -> Mat.t

val loop_position : Layout.t -> string -> int
(** Position of the unique loop with the given variable name.
    @raise Not_found if absent; @raise Failure if ambiguous. *)

val interchange : Layout.t -> string -> string -> Mat.t
(** Loop permutation (Section 4.1): swaps two loop positions. *)

val reversal : Layout.t -> string -> Mat.t
(** Identity with [-1] at the reversed loop's diagonal entry. *)

val scaling : Layout.t -> string -> int -> Mat.t
(** Identity with the scale factor at the loop's diagonal entry.
    @raise Invalid_argument on a zero factor. *)

val skew : Layout.t -> target:string -> source:string -> factor:int -> Mat.t
(** [skew ~target ~source ~factor]: the target loop's row gains
    [factor] at the source loop's column, i.e. [target' = target +
    factor * source]. *)

val align : Layout.t -> stmt:string -> loop:string -> amount:int -> Mat.t
(** Statement alignment (Section 4.3): shifts the given statement's
    iterations with respect to the loop by [amount], using the deepest
    edge column on the statement's path (which is 1 exactly for that
    statement's instances).
    @raise Failure when the statement has no edge position on its path
    (it is then the only statement, and alignment is meaningless). *)

val reorder : Layout.t -> parent:Ast.path -> perm:int list -> Mat.t
(** Statement reordering (Section 4.2): permutes the children of the node
    at [parent]; [List.nth perm i] is the new index of old child [i]. *)

val compose : Mat.t -> Mat.t -> Mat.t
(** [compose second first] applies [first], then [second]. *)

val distribute : Layout.t -> at:int -> Mat.t * Ast.program
(** Loop distribution (Section 4.2) of a program whose nest is one
    top-level loop: splits its children into groups [0..at-1] and
    [at..m-1], each under its own copy of the loop.  Returns the paper's
    non-square matrix together with the distributed program.
    @raise Invalid_argument if the program shape does not match. *)

val jam : Layout.t -> Mat.t * Ast.program
(** Loop jamming: fuses a program consisting of exactly two top-level
    loops into one (the inverse of {!distribute}); bounds are taken from
    the first loop.  Returns the non-square matrix and fused program.
    @raise Invalid_argument if the program shape does not match. *)
