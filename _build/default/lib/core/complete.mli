(** The augmentation/completion procedure of Figure 7 (after Li-Pingali).

    When a per-statement transformation [T_S] is rank-deficient, several
    source instances of S map to one target instance, and code generation
    must add loops around S to enumerate them (Section 5.4).  The added
    rows must carry every self-dependence of S left unsatisfied by the
    transformation (Theorem 3): unsatisfied distances lie in the
    nullspace of [T_S], and vectors of distinct height within a
    [(k-r)]-dimensional space occupy at most [k-r] heights, so appending
    the unit vector [e_h] at each occupied height both regains rank and
    carries the dependences.

    Dependence entries here are intervals, so "height" is the first
    coordinate not definitely zero; a final verification pass re-checks
    every input vector against the augmented matrix. *)

module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Interval = Inl_presburger.Interval

type ivec = Interval.t array

exception Cannot_complete of string

val iheight : ivec -> int option
(** First coordinate not definitely zero (the paper's [Height]). *)

val apply_ivec : Mat.t -> ivec -> ivec
(** Exact interval image of a box under an integer matrix. *)

val certainly_lex_nonneg : ivec -> bool
(** Every point of the box is lexicographically non-negative. *)

val augment : Mat.t -> ivec list -> Vec.t list
(** [augment t deps] returns the rows to append to [t] (in order), where
    [deps] are the unsatisfied self-dependence distances projected onto
    the statement's own loop coordinates.
    @raise Cannot_complete when no sound completion exists. *)
