(** Block structure of transformation matrices and recovery of the
    transformed AST (Section 5.2, Figures 5-6).

    A legal transformation matrix must respect the recursive block
    structure of the instance-vector layout: at every node, the rows for
    the node's edge labels must form a permutation of that node's edge
    columns (and be zero elsewhere) — this permutation is the statement
    reordering at that node — and the rows of each child's block must be
    zero on the columns of sibling blocks (they may freely reference
    ancestor loop and edge columns, which is how skewing by an outer loop
    and statement alignment enter).

    [infer] checks the structure and returns the reordered program
    skeleton (bounds unchanged — code generation recomputes them), the
    new layout, and the old-to-new position correspondence. *)

module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout

type t = {
  matrix : Mat.t;
  old_layout : Layout.t;
  new_program : Ast.program;  (** old program with children reordered *)
  new_layout : Layout.t;
  old_to_new : int array;  (** position correspondence *)
  perms : (Ast.path * int array) list;
      (** per-node child permutation: [perm.(old_child) = new_child] *)
}

val infer : Layout.t -> Mat.t -> (t, string) result

val map_path : t -> Ast.path -> Ast.path
(** Where a node of the old program lands in the new one. *)

val new_stmt_info : t -> string -> Layout.stmt_info
(** The transformed program's statement info for a (label-preserved)
    statement. *)
