(* The completion procedure of Figure 7 (after Li-Pingali [10]): augment a
   rank-deficient per-statement transformation T_S with extra rows so that
   it reaches full column rank and the appended rows carry every
   unsatisfied self-dependence of S.

   Unsatisfied self-dependence distances live in the nullspace of T_S
   (Theorem 3 part 1), and vectors of distinct height within a
   (k-r)-dimensional space occupy at most k-r heights, so appending the
   unit vector e_h at each occupied height both regains rank and carries
   the dependences.  Our dependence entries are intervals, so "height" is
   the first coordinate not definitely zero, and a vector whose height
   entry merely spans [0, oo) is masked at that height and re-examined; a
   final verification pass re-checks every input vector against the
   augmented matrix and rejects completions that could reorder a
   dependence. *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Gauss = Inl_linalg.Gauss
module Interval = Inl_presburger.Interval

type ivec = Interval.t array

exception Cannot_complete of string

let iheight (v : ivec) : int option =
  let n = Array.length v in
  let rec go i =
    if i >= n then None else if Interval.definitely_zero v.(i) then go (i + 1) else Some i
  in
  go 0

(* Apply an integer matrix to an interval vector. *)
let apply_ivec (m : Mat.t) (v : ivec) : ivec =
  Array.init (Mat.rows m) (fun i ->
      let acc = ref (Interval.point Mpz.zero) in
      Array.iteri (fun j x -> acc := Interval.add !acc (Interval.scale (Mat.get m i j) x)) v;
      !acc)

(* Every point of the box is lexicographically non-negative. *)
let certainly_lex_nonneg (v : ivec) : bool =
  let n = Array.length v in
  let rec go i =
    if i >= n then true
    else if Interval.definitely_zero v.(i) then go (i + 1)
    else if Interval.definitely_positive v.(i) then true
    else if Interval.definitely_nonneg v.(i) then go (i + 1)
    else false
  in
  go 0

(* [augment t deps] returns the rows appended to [t] (in order).  [deps]
   are the unsatisfied self-dependence distance vectors of the statement,
   projected onto its own loop coordinates (length k).
   @raise Cannot_complete when no sound completion exists. *)
let augment (t : Mat.t) (deps : ivec list) : Vec.t list =
  let k = Mat.cols t in
  if k = 0 then []
  else begin
    let current = ref (Mat.copy t) in
    let added = ref [] in
    let try_append row =
      let cand = Mat.append_row !current row in
      if Gauss.rank cand > Gauss.rank !current then begin
        current := cand;
        added := row :: !added
      end
    in
    (* Fig 7 main loop over the heights of the unsatisfied vectors. *)
    let used = Array.make k false in
    let pending = ref deps in
    let fuel = ref ((k + 1) * (List.length deps + 1)) in
    while !pending <> [] && !fuel > 0 do
      decr fuel;
      match !pending with
      | [] -> ()
      | v :: rest -> (
          match iheight v with
          | None -> pending := rest (* all-zero box: the same instance; nothing to carry *)
          | Some h ->
              if not used.(h) then begin
                used.(h) <- true;
                try_append (Vec.unit k h)
              end;
              if Interval.definitely_positive v.(h) then pending := rest
              else if Interval.definitely_nonneg v.(h) then begin
                (* the height entry may be zero: mask it and let deeper
                   coordinates carry that case *)
                let v' = Array.copy v in
                v'.(h) <- Interval.point Mpz.zero;
                pending := v' :: rest
              end
              else
                (* a possibly-negative height cannot be carried by unit
                   rows; the final verification decides its fate *)
                pending := rest)
    done;
    (* Fig 7 fallback (line 15): if rank is still short, span the rest of
       the space with nullspace rows, then unit vectors *)
    if Gauss.rank !current < k then List.iter try_append (Gauss.nullspace t);
    for h = 0 to k - 1 do
      if Gauss.rank !current < k then try_append (Vec.unit k h)
    done;
    if Gauss.rank !current < k then raise (Cannot_complete "rank completion failed");
    (* verification: the augmented matrix must never reverse an
       unsatisfied dependence; full rank then guarantees strict ordering
       of distinct dependent instances *)
    List.iter
      (fun d ->
        if not (certainly_lex_nonneg (apply_ivec !current d)) then
          raise
            (Cannot_complete
               "augmented per-statement transformation fails to carry an unsatisfied \
                self-dependence"))
      deps;
    List.rev !added
  end
