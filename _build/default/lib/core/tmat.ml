module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout

let identity layout = Mat.identity (Layout.size layout)

let loop_position (layout : Layout.t) (var : string) : int =
  let hits =
    Array.to_list layout.Layout.positions
    |> List.mapi (fun i p -> (i, p))
    |> List.filter_map (function
         | i, Layout.Ploop (_, v) when String.equal v var -> Some i
         | _ -> None)
  in
  match hits with
  | [ i ] -> i
  | [] -> raise Not_found
  | _ -> failwith (Printf.sprintf "Tmat.loop_position: several loops named %s" var)

let interchange layout a b =
  Mat.swap_rows_matrix (Layout.size layout) (loop_position layout a) (loop_position layout b)

let reversal layout var =
  let m = identity layout in
  let p = loop_position layout var in
  Mat.set m p p Mpz.minus_one;
  m

let scaling layout var k =
  if k = 0 then invalid_arg "Tmat.scaling: zero factor";
  let m = identity layout in
  let p = loop_position layout var in
  Mat.set m p p (Mpz.of_int k);
  m

let skew layout ~target ~source ~factor =
  let m = identity layout in
  let t = loop_position layout target and s = loop_position layout source in
  if t = s then invalid_arg "Tmat.skew: target equals source";
  Mat.set m t s (Mpz.of_int factor);
  m

(* The deepest edge position on the statement's path: the column that is 1
   exactly for this statement's instances. *)
let private_edge_column (layout : Layout.t) (si : Layout.stmt_info) : int option =
  let best = ref None in
  Array.iteri
    (fun i pos ->
      match pos with
      | Layout.Pedge (q, c) ->
          let edge_path = q @ [ c ] in
          let is_prefix p path =
            let rec go p q =
              match (p, q) with
              | [], _ -> true
              | _, [] -> false
              | a :: p', b :: q' -> a = b && go p' q'
            in
            go p path
          in
          if is_prefix edge_path si.Layout.path then begin
            match !best with
            | Some (d, _) when d >= List.length edge_path -> ()
            | _ -> best := Some (List.length edge_path, i)
          end
      | Layout.Ploop _ -> ())
    layout.Layout.positions;
  Option.map snd !best

let align layout ~stmt ~loop ~amount =
  let si = Layout.stmt_info layout stmt in
  match private_edge_column layout si with
  | None ->
      failwith
        (Printf.sprintf "Tmat.align: %s has no edge position (it is the only statement)" stmt)
  | Some col ->
      let m = identity layout in
      let row = loop_position layout loop in
      Mat.set m row col (Mpz.of_int amount);
      m

let reorder (layout : Layout.t) ~parent ~perm =
  let prog = layout.Layout.program in
  let permute_children children =
    let arr = Array.of_list children in
    let out = Array.make (Array.length arr) None in
    List.iteri (fun i j -> out.(j) <- Some arr.(i)) perm;
    Array.to_list out |> List.map Option.get
  in
  let rec rebuild prefix nodes =
    let nodes = if prefix = parent then permute_children nodes else nodes in
    List.mapi
      (fun i n ->
        match n with
        | Ast.Loop l -> Ast.Loop { l with body = rebuild (prefix @ [ i ]) l.body }
        | Ast.If (g, body) -> Ast.If (g, rebuild (prefix @ [ i ]) body)
        | Ast.Let (v, d, body) -> Ast.Let (v, d, rebuild (prefix @ [ i ]) body)
        | Ast.Stmt _ -> n)
      nodes
  in
  (* careful: permute first (prefix check), then recurse with NEW indices —
     but [parent] is a path in the OLD program, and only descendants of
     [parent] get renumbered, none of which can equal [parent]; so
     checking the old path is sound. *)
  let new_prog = { prog with Ast.nest = rebuild [] prog.Ast.nest } in
  let new_layout = Layout.of_program ~padding:layout.Layout.padding new_prog in
  let map_path q =
    (* only the child index right below [parent] changes *)
    let rec go pre = function
      | [] -> []
      | i :: rest ->
          if pre = parent then List.nth perm i :: go (pre @ [ List.nth perm i ]) rest
          else i :: go (pre @ [ i ]) rest
    in
    go [] q
  in
  let n = Layout.size layout in
  let m = Mat.make n n in
  let new_index_of pos =
    let target =
      match pos with
      | Layout.Ploop (q, v) -> Layout.Ploop (map_path q, v)
      | Layout.Pedge (q, c) ->
          let q' = map_path q in
          let c' = if q = parent then List.nth perm c else c in
          Layout.Pedge (q', c')
    in
    let found = ref (-1) in
    Array.iteri (fun i p -> if p = target then found := i) new_layout.Layout.positions;
    if !found < 0 then failwith "Tmat.reorder: position mapping failed";
    !found
  in
  Array.iteri (fun old_idx pos -> Mat.set m (new_index_of pos) old_idx Mpz.one) layout.Layout.positions;
  m

let compose second first = Mat.mul second first

(* ---- distribution and jamming (Section 4.2; non-square matrices) ---- *)

let distribute (layout : Layout.t) ~at : Mat.t * Ast.program =
  let prog = layout.Layout.program in
  match prog.Ast.nest with
  | [ Ast.Loop l ] ->
      let mcount = List.length l.Ast.body in
      if mcount < 2 || at <= 0 || at >= mcount then
        invalid_arg "Tmat.distribute: need a split point strictly inside >= 2 children";
      let group1 = List.filteri (fun i _ -> i < at) l.Ast.body in
      let group2 = List.filteri (fun i _ -> i >= at) l.Ast.body in
      let l1 = { l with Ast.body = group1 } and l2 = { l with Ast.body = group2 } in
      let new_prog = { prog with Ast.nest = [ Ast.Loop l1; Ast.Loop l2 ] } in
      (* old positions: [v; e_{m-1}..e_0; B_{m-1}..B_0] *)
      let n_old = Layout.size layout in
      let v_old = 0 in
      let edge_old i = 1 + (mcount - 1 - i) in
      let block_ranges =
        (* start index of each child's block in the old layout *)
        let sizes =
          List.map
            (fun c ->
              match c with
              | Ast.Stmt _ -> 0
              | Ast.Loop _ | Ast.If _ | Ast.Let _ ->
                  (* size = positions in subtree *)
                  let rec sz = function
                    | Ast.Stmt _ -> 0
                    | Ast.If (_, b) | Ast.Let (_, _, b) -> List.fold_left (fun a x -> a + sz x) 0 b
                    | Ast.Loop ll ->
                        let mm = List.length ll.Ast.body in
                        1
                        + (if mm >= 2 then mm else 0)
                        + List.fold_left (fun a x -> a + sz x) 0 ll.Ast.body
                  in
                  sz c)
            l.Ast.body
        in
        let sizes = Array.of_list sizes in
        let starts = Array.make mcount 0 in
        let cursor = ref (1 + mcount) in
        for i = mcount - 1 downto 0 do
          starts.(i) <- !cursor;
          cursor := !cursor + sizes.(i)
        done;
        (starts, sizes)
      in
      let starts, sizes = block_ranges in
      (* new rows, in new layout order *)
      let rows = ref [] in
      let unit_row j = Vec.unit n_old j in
      let sum_row js =
        let v = Vec.zero n_old in
        List.iter (fun j -> v.(j) <- Mpz.one) js;
        v
      in
      (* root edges: e_r1 (to new child 1 = group2), e_r0 (group1) *)
      rows := sum_row (List.init (mcount - at) (fun k -> edge_old (at + k))) :: !rows;
      rows := sum_row (List.init at edge_old) :: !rows;
      (* group2 region: v2; its edges (if >= 2 children); blocks of
         children m-1 .. at *)
      rows := unit_row v_old :: !rows;
      if mcount - at >= 2 then
        for k = mcount - 1 downto at do
          rows := unit_row (edge_old k) :: !rows
        done;
      for i = mcount - 1 downto at do
        for j = starts.(i) to starts.(i) + sizes.(i) - 1 do
          rows := unit_row j :: !rows
        done
      done;
      (* group1 region *)
      rows := unit_row v_old :: !rows;
      if at >= 2 then
        for k = at - 1 downto 0 do
          rows := unit_row (edge_old k) :: !rows
        done;
      for i = at - 1 downto 0 do
        for j = starts.(i) to starts.(i) + sizes.(i) - 1 do
          rows := unit_row j :: !rows
        done
      done;
      (Array.of_list (List.rev !rows), new_prog)
  | _ -> invalid_arg "Tmat.distribute: program must be a single top-level loop"

let jam (layout : Layout.t) : Mat.t * Ast.program =
  let prog = layout.Layout.program in
  match prog.Ast.nest with
  | [ Ast.Loop l1; Ast.Loop l2 ] ->
      (* the fused loop binds l1's variable; l2's body must follow suit *)
      let l2_body =
        if String.equal l1.Ast.var l2.Ast.var then l2.Ast.body
        else List.map (Ast.rename_var_node l2.Ast.var l1.Ast.var) l2.Ast.body
      in
      let fused = { l1 with Ast.body = l1.Ast.body @ l2_body } in
      let new_prog = { prog with Ast.nest = [ Ast.Loop fused ] } in
      let n_old = Layout.size layout in
      (* old layout: [E_r1; E_r0; R(L2); R(L1)] *)
      let r_l2_start = 2 in
      let rec node_size = function
        | Ast.Stmt _ -> 0
        | Ast.If (_, b) | Ast.Let (_, _, b) -> List.fold_left (fun a x -> a + node_size x) 0 b
        | Ast.Loop ll ->
            let mm = List.length ll.Ast.body in
            1 + (if mm >= 2 then mm else 0) + List.fold_left (fun a x -> a + node_size x) 0 ll.Ast.body
      in
      let size_l2 = node_size (Ast.Loop l2) in
      let r_l1_start = r_l2_start + size_l2 in
      let m1 = List.length l1.Ast.body and m2 = List.length l2.Ast.body in
      (* offsets of the pieces inside R(L2)/R(L1):
         [v; edges (if >= 2); blocks m-1..0] *)
      let region_info base (l : Ast.loop) =
        let mm = List.length l.Ast.body in
        let v = base in
        let edges = if mm >= 2 then List.init mm (fun k -> base + 1 + k) else [] in
        (* edges listed as e_{m-1}..e_0 — index k holds e_{mm-1-k} *)
        let sizes = Array.of_list (List.map node_size l.Ast.body) in
        let starts = Array.make mm 0 in
        let cursor = ref (base + 1 + List.length edges) in
        for i = mm - 1 downto 0 do
          starts.(i) <- !cursor;
          cursor := !cursor + sizes.(i)
        done;
        (v, edges, starts, sizes)
      in
      let _v2, edges2, starts2, sizes2 = region_info r_l2_start l2 in
      let v1, edges1, starts1, sizes1 = region_info r_l1_start l1 in
      let unit_row j = Vec.unit n_old j in
      let edge_row_of edges mm i root_edge =
        (* row producing the old edge label of child i of a group, where
           [edges] holds positions e_{mm-1}..e_0; a single-child group has
           no inner edges and uses the root edge instead *)
        if mm >= 2 then unit_row (List.nth edges (mm - 1 - i)) else unit_row root_edge
      in
      let rows = ref [] in
      (* fused loop variable: the first loop's value (bounds come from l1) *)
      rows := unit_row v1 :: !rows;
      (* new edges e_{m-1}..e_0 for m = m1 + m2 children: child j < m1 from
         L1 (root edge 1 = position 1), child j >= m1 from L2 (root edge 0) *)
      let mtot = m1 + m2 in
      if mtot >= 2 then
        for j = mtot - 1 downto 0 do
          let row =
            if j < m1 then edge_row_of edges1 m1 j 1 else edge_row_of edges2 m2 (j - m1) 0
          in
          rows := row :: !rows
        done;
      (* new blocks, children m-1 .. 0 *)
      for j = mtot - 1 downto 0 do
        let starts, sizes, i = if j < m1 then (starts1, sizes1, j) else (starts2, sizes2, j - m1) in
        for p = starts.(i) to starts.(i) + sizes.(i) - 1 do
          rows := unit_row p :: !rows
        done
      done;
      (Array.of_list (List.rev !rows), new_prog)
  | _ -> invalid_arg "Tmat.jam: program must be exactly two top-level loops"
