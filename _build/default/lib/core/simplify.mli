(** The "standard optimizations" of Section 5.5 that clean generated
    code, driven by the exact integer decision procedure:

    - integral [Let] bindings (denominator 1) are substituted into their
      bodies and removed, recovering direct-subscript style for
      unimodular transformations;
    - guards implied by the enclosing context (loop bounds, other guards,
      let definitions) are dropped — including divisibility guards,
      decided by a remainder-satisfiability query;
    - dominated bound terms are removed from [min]/[max] bounds;
    - empty [If]s are spliced away.

    Semantics-preserving by construction: every removal is justified by
    an implication checked with {!Inl_presburger.Omega}. *)

module Ast = Inl_ir.Ast

val simplify : Ast.program -> Ast.program
