lib/core/perstmt.ml: Array Blockstruct Inl_instance Inl_linalg Inl_num List
