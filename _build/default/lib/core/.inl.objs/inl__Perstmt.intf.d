lib/core/perstmt.mli: Blockstruct Inl_linalg
