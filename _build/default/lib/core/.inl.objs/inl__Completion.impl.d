lib/core/completion.ml: Array Blockstruct Fun Hashtbl Inl_depend Inl_instance Inl_ir Inl_linalg Inl_num Inl_presburger Legality List Tmat
