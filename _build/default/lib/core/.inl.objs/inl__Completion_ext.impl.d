lib/core/completion_ext.ml: Completion Inl_depend Inl_instance Inl_ir Inl_linalg Inl_num Inl_presburger List Printf String Tmat
