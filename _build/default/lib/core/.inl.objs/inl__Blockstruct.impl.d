lib/core/blockstruct.ml: Array Format Fun Inl_instance Inl_ir Inl_linalg Inl_num List String
