lib/core/simplify.ml: Inl_ir Inl_num Inl_presburger List String
