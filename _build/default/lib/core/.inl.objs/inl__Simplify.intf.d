lib/core/simplify.mli: Inl_ir
