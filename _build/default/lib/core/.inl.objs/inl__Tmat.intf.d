lib/core/tmat.mli: Inl_instance Inl_ir Inl_linalg Inl_num
