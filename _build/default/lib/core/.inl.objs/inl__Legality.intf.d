lib/core/legality.mli: Blockstruct Inl_depend Inl_instance Inl_linalg Inl_presburger
