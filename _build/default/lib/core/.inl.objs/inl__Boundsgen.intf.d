lib/core/boundsgen.mli: Inl_ir Inl_presburger
