lib/core/inl.ml: Blockstruct Boundsgen Codegen Complete Completion Completion_ext Inl_depend Inl_instance Inl_ir Inl_linalg Legality Perstmt Pipeline Simplify Tmat
