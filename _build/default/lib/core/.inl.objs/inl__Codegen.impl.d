lib/core/codegen.ml: Array Blockstruct Boundsgen Complete Format Fun Inl_depend Inl_instance Inl_ir Inl_linalg Inl_num Inl_presburger List Perstmt Printf String
