lib/core/complete.ml: Array Inl_linalg Inl_num Inl_presburger List
