lib/core/tmat.ml: Array Inl_instance Inl_ir Inl_linalg Inl_num List Option Printf String
