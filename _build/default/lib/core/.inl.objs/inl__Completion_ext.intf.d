lib/core/completion_ext.mli: Completion Inl_depend Inl_instance Inl_ir Inl_linalg
