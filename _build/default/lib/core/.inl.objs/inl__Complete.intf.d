lib/core/complete.mli: Inl_linalg Inl_presburger
