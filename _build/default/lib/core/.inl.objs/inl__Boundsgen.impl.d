lib/core/boundsgen.ml: Inl_ir Inl_num Inl_presburger List
