lib/core/blockstruct.mli: Inl_instance Inl_ir Inl_linalg
