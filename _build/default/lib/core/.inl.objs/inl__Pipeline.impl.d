lib/core/pipeline.ml: Blockstruct Format Inl_instance Inl_ir Inl_linalg List String Tmat
