lib/core/completion.mli: Inl_depend Inl_instance Inl_linalg
