lib/core/pipeline.mli: Format Inl_instance Inl_ir Inl_linalg
