lib/core/legality.ml: Array Blockstruct Format Inl_depend Inl_instance Inl_ir Inl_linalg Inl_num Inl_presburger List String
