lib/core/codegen.mli: Blockstruct Inl_depend Inl_ir
