(** Code generation (Section 5): from a legal transformation matrix to a
    runnable transformed program.

    Per statement S (nested in [k] loops, per-statement transformation
    [T_S] with alignment offset, augmented by {!Complete} with [q] extra
    rows):

    - the target nest for S is the [k] reordered loops of the new AST
      followed by [q] private augmentation loops;
    - loop bounds come from Fourier-Motzkin projection of the system
      [{ y = T'_S i + o_S } /\ original bounds] (Lemma 3, {!Boundsgen});
    - the original iterators are reconstructed from the non-singular rows
      (Definition 8) as exact rational solves, emitted as [Let] bindings
      with divisibility guards when [T'_S] is not unimodular;
    - guards re-impose the original bounds and the singular-row
      conditions (Section 5.5), discarding the spurious iterations that
      the rational bound relaxation or a shared loop's covering bounds
      admit.

    A loop shared by several statements gets covering (union) bounds:
    the min of the statements' lower bounds and the max of their uppers,
    with per-statement guards restoring exactness. *)

module Ast = Inl_ir.Ast
module Dep = Inl_depend.Dep

exception Codegen_error of string

val generate : Blockstruct.t -> unsatisfied:Dep.t list -> Ast.program
(** [generate structure ~unsatisfied] produces the transformed program
    for a matrix found {e legal} by {!Legality.check}; [unsatisfied] is
    the verdict's unsatisfied-dependence list (self-dependences the extra
    loops must carry).  The result validates ({!Ast.validate}).
    @raise Codegen_error on internal failures (e.g. an augmentation loop
    without finite bounds). *)
