(* Loop-bound generation by Fourier-Motzkin projection (Lemma 3, after
   Ancourt-Irigoin [1] and Li-Pingali [10]).

   Given the constraint system tying a statement's new loop variables to
   its original iterators, the bounds of each new loop are read off after
   eliminating the original iterators (through the defining equalities)
   and all deeper loop variables (by rational pairing).  The rational
   relaxation may add spurious boundary iterations; the per-statement
   guards emitted by code generation discard them, so the bounds only
   need to be a superset. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module Ast = Inl_ir.Ast

exception Infeasible

let normalize_list (cs : Constr.t list) : Constr.t list =
  let rec go acc = function
    | [] -> List.sort_uniq Constr.compare acc
    | c :: rest -> (
        match Constr.normalize c with
        | `True -> go acc rest
        | `False -> raise Infeasible
        | `Constr c -> go (c :: acc) rest)
  in
  go [] cs

(* Substitute using equality [e = 0] (with coefficient [a] on [v]) into
   [f], eliminating [v] without leaving the integers:
   f' = |a| * f - sign(a) * coeff_f(v) * e. *)
let subst_with_equality e a v f =
  let b = Linexpr.coeff f v in
  if Mpz.is_zero b then f
  else begin
    let s = Linexpr.scale (Mpz.abs a) f in
    let t = Linexpr.scale (Mpz.mul (Mpz.of_int (Mpz.sign a)) b) e in
    Linexpr.sub s t
  end

let eliminate_rational (cs : Constr.t list) (v : string) : Constr.t list =
  let eqs, ges, rest =
    List.fold_right
      (fun c (eqs, ges, rest) ->
        if not (Constr.mem c v) then (eqs, ges, c :: rest)
        else if Constr.is_eq c then (c :: eqs, ges, rest)
        else (eqs, c :: ges, rest))
      cs ([], [], [])
  in
  match eqs with
  | e0 :: other_eqs ->
      let e = Constr.expr e0 in
      let a = Linexpr.coeff e v in
      let sub c =
        match c with
        | Constr.Ge f -> Constr.Ge (subst_with_equality e a v f)
        | Constr.Eq f -> Constr.Eq (subst_with_equality e a v f)
      in
      normalize_list (List.map sub (other_eqs @ ges) @ rest)
  | [] ->
      let lowers = ref [] and uppers = ref [] in
      List.iter
        (fun c ->
          let e = Constr.expr c in
          let a = Linexpr.coeff e v in
          let r = Linexpr.sub e (Linexpr.term a v) in
          if Mpz.is_positive a then lowers := (a, r) :: !lowers
          else uppers := (Mpz.neg a, r) :: !uppers)
        ges;
      let shadow =
        List.concat_map
          (fun (a, r) ->
            List.map
              (fun (b, s) -> Constr.ge (Linexpr.add (Linexpr.scale a s) (Linexpr.scale b r)))
              !uppers)
          !lowers
      in
      normalize_list (shadow @ rest)

(* Bounds of [v] read from the constraints that mention it. *)
let bounds_of (cs : Constr.t list) (v : string) : Ast.bterm list * Ast.bterm list =
  let lowers = ref [] and uppers = ref [] in
  let push_lower num den = lowers := ({ Ast.num; den } : Ast.bterm) :: !lowers in
  let push_upper num den = uppers := ({ Ast.num; den } : Ast.bterm) :: !uppers in
  List.iter
    (fun c ->
      if Constr.mem c v then begin
        let e = Constr.expr c in
        let a = Linexpr.coeff e v in
        let r = Linexpr.sub e (Linexpr.term a v) in
        match c with
        | Constr.Ge _ ->
            if Mpz.is_positive a then push_lower (Linexpr.neg r) a
            else push_upper r (Mpz.neg a)
        | Constr.Eq _ ->
            if Mpz.is_positive a then begin
              push_lower (Linexpr.neg r) a;
              push_upper (Linexpr.neg r) a
            end
            else begin
              push_lower r (Mpz.neg a);
              push_upper r (Mpz.neg a)
            end
      end)
    cs;
  let dedupe l =
    List.sort_uniq
      (fun (t1 : Ast.bterm) (t2 : Ast.bterm) ->
        let c = Mpz.compare t1.den t2.den in
        if c <> 0 then c else Linexpr.compare t1.num t2.num)
      l
  in
  (dedupe !lowers, dedupe !uppers)

type loop_bounds = { var : string; lower : Ast.bterm list; upper : Ast.bterm list }

(* [scan_bounds cs ~eliminate ~scan] returns, for each scan variable
   (listed outermost first), its lower and upper bound terms in terms of
   outer scan variables and parameters (any variable in neither list);
   the [eliminate] variables are projected out first.
   @raise Infeasible when the system has no rational points. *)
let scan_bounds (cs : Constr.t list) ~(eliminate : string list) ~(scan : string list) :
    loop_bounds list =
  let cs = normalize_list cs in
  let cs = List.fold_left eliminate_rational cs eliminate in
  (* peel scan variables innermost first *)
  let rec go cs = function
    | [] -> []
    | v :: outer_rev ->
        let lower, upper = bounds_of cs v in
        let cs' = eliminate_rational cs v in
        { var = v; lower; upper } :: go cs' outer_rev
  in
  List.rev (go cs (List.rev scan))
