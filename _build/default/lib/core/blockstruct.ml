module Mpz = Inl_num.Mpz
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout

type t = {
  matrix : Mat.t;
  old_layout : Layout.t;
  new_program : Ast.program;
  new_layout : Layout.t;
  old_to_new : int array;
  perms : (Ast.path * int array) list;
}

exception Reject of string

let reject fmt = Format.kasprintf (fun s -> raise (Reject s)) fmt

(* Number of instance-vector positions contributed by a node's subtree. *)
let rec node_size : Ast.node -> int = function
  | Ast.Stmt _ -> 0
  | Ast.If (_, body) | Ast.Let (_, _, body) -> children_size body
  | Ast.Loop l -> 1 + children_size l.body

and children_size (children : Ast.node list) : int =
  let m = List.length children in
  let edges = if m >= 2 then m else 0 in
  edges + List.fold_left (fun acc c -> acc + node_size c) 0 children

(* Offsets of the pieces of a children region laid out as
   [edges e_{m-1}..e_0][block of child m-1]...[block of child 0]
   starting at [base]: returns (edge_base, block_offset array indexed by
   child). *)
let region_offsets base (children : Ast.node list) =
  let m = List.length children in
  let edges = if m >= 2 then m else 0 in
  let sizes = Array.of_list (List.map node_size children) in
  let offs = Array.make m 0 in
  let cursor = ref (base + edges) in
  for i = m - 1 downto 0 do
    offs.(i) <- !cursor;
    cursor := !cursor + sizes.(i)
  done;
  (base, offs)

let infer (old_layout : Layout.t) (m : Mat.t) : (t, string) result =
  let prog = old_layout.Layout.program in
  let n = Layout.size old_layout in
  try
    if Mat.rows m <> n || Mat.cols m <> n then
      reject "transformation matrix must be %dx%d for this program" n n;
    let perms = ref [] in
    let old_to_new = Array.make n (-1) in
    (* Recursively check the region of a children list.
       [old_base]/[new_base] are the starting offsets of the children
       region in the old/new layouts; [parent] is the node's path.  The
       old columns outside [allowed] (sibling blocks) must be zero in all
       rows of this region; we enforce sibling isolation locally at each
       level, which composes to the global rule. *)
    let rec check_children parent (children : Ast.node list) old_base new_base :
        Ast.node list =
      let mcount = List.length children in
      if mcount = 0 then []
      else begin
        let nedges = if mcount >= 2 then mcount else 0 in
        let old_edge_base, old_offs = region_offsets old_base children in
        (* infer the child permutation from the edge square *)
        let perm = Array.init mcount Fun.id in
        if mcount >= 2 then begin
          let square = Mat.sub_matrix m ~row:new_base ~col:old_edge_base ~rows:mcount ~cols:mcount in
          if not (Mat.is_permutation square) then
            reject "edge rows at node [%s] are not a permutation"
              (String.concat ";" (List.map string_of_int parent));
          (* edge rows must be zero outside their square *)
          for r = new_base to new_base + mcount - 1 do
            for c = 0 to n - 1 do
              if (c < old_edge_base || c >= old_edge_base + mcount) && not (Mpz.is_zero (Mat.get m r c))
              then
                reject "edge row %d has an entry outside its node's edge columns" r
            done
          done;
          (* square.(k).(k') = 1 means new edge e'_{m-1-k} = old edge
             e_{m-1-k'}: old child (m-1-k') becomes new child (m-1-k) *)
          for k = 0 to mcount - 1 do
            for k' = 0 to mcount - 1 do
              if Mpz.is_one (Mat.get square k k') then perm.(mcount - 1 - k') <- mcount - 1 - k
            done
          done;
          (* map edge positions *)
          for k' = 0 to mcount - 1 do
            let newchild = perm.(mcount - 1 - k') in
            old_to_new.(old_edge_base + k') <- new_base + (mcount - 1 - newchild)
          done
        end;
        perms := (parent, Array.copy perm) :: !perms;
        (* new block offsets: new child j' has the size of old child
           (inverse-perm j') *)
        let sizes = Array.of_list (List.map node_size children) in
        let inv = Array.make mcount 0 in
        Array.iteri (fun i j -> inv.(j) <- i) perm;
        let new_offs = Array.make mcount 0 in
        let cursor = ref (new_base + nedges) in
        for j = mcount - 1 downto 0 do
          new_offs.(j) <- !cursor;
          cursor := !cursor + sizes.(inv.(j))
        done;
        (* Loop (block) rows are unconstrained: thanks to the diagonal
           padding, a row may even reference a sibling subtree's loop
           column — the paper's own Section 6 completion matrix does so
           (its new L row reads the old I column, whose padded value for
           S3 is K).  Only the edge rows carry structure. *)
        (* recurse into children and build the reordered child list *)
        let transformed =
          List.mapi
            (fun i child ->
              let old_b = old_offs.(i) and new_b = new_offs.(perm.(i)) in
              let child_path = parent @ [ i ] in
              match child with
              | Ast.Stmt _ -> (perm.(i), child)
              | Ast.If _ | Ast.Let _ -> reject "If/Let nodes cannot be transformed"
              | Ast.Loop l ->
                  old_to_new.(old_b) <- new_b;
                  let body' = check_children child_path l.body (old_b + 1) (new_b + 1) in
                  (perm.(i), Ast.Loop { l with body = body' }))
            children
        in
        List.sort (fun (a, _) (b, _) -> compare a b) transformed |> List.map snd
      end
    in
    let new_nest = check_children [] prog.Ast.nest 0 0 in
    let new_program = { prog with Ast.nest = new_nest } in
    let new_layout = Layout.of_program ~padding:old_layout.Layout.padding new_program in
    Ok
      {
        matrix = m;
        old_layout;
        new_program;
        new_layout;
        old_to_new;
        perms = List.rev !perms;
      }
  with Reject msg -> Error msg

let map_path (t : t) (p : Ast.path) : Ast.path =
  let rec go prefix = function
    | [] -> []
    | i :: rest ->
        let perm = List.assoc prefix t.perms in
        perm.(i) :: go (prefix @ [ i ]) rest
  in
  go [] p

let new_stmt_info (t : t) label = Layout.stmt_info t.new_layout label
