(** Distribution and fusion in the completion procedure — the extension
    the paper names as future work (Section 7).

    The search space is widened from matrices over one program to pairs
    (program {e variant}, matrix): the original program, its legal
    single-point distributions (for a single top-level loop), and its
    legal fusion (for exactly two top-level loops with matching
    headers).  Each variant carries its own layout and dependences; the
    inner search is the ordinary {!Completion}.  A [goal] predicate
    selects among legal results — which is what makes restructuring
    observable, since distribution decouples the per-statement rows that
    one shared loop forces together. *)

module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout

type restructuring = Original | Distributed of int | Fused

type variant = {
  restructuring : restructuring;
  program : Ast.program;
  layout : Layout.t;
  deps : Dep.t list;
}

val describe : restructuring -> string

val distribution_legal : Layout.t -> Dep.t list -> at:int -> bool
(** Splitting the single top-level loop between children [at-1] and [at]
    is legal iff no dependence flows from the second group back to the
    first. *)

val fusion_legal : Layout.t -> bool
(** Fusing two adjacent top-level loops with matching headers is legal
    iff no conflicting access pair would be reordered (the second loop's
    instance at a strictly earlier outer iteration than the first's). *)

val variants : Layout.t -> Dep.t list -> variant list
(** The original program plus every legal restructuring, each analyzed. *)

val complete_with_restructuring :
  ?options:Completion.options ->
  Layout.t ->
  Dep.t list ->
  goal:(variant -> Mat.t -> bool) ->
  (variant * Mat.t) option
