(** Loop-bound generation by Fourier-Motzkin projection (Lemma 3, after
    Ancourt-Irigoin and Li-Pingali).

    Given the constraint system tying a statement's new loop variables to
    its original iterators, the bounds of each new loop are read off
    after eliminating the original iterators (through the defining
    equalities) and all deeper loop variables (by rational pairing).  The
    rational relaxation may admit spurious boundary iterations; the
    per-statement guards emitted by {!Codegen} discard them, so the
    bounds only need to be a superset of the true iteration set. *)

module Constr = Inl_presburger.Constr
module Ast = Inl_ir.Ast

exception Infeasible
(** The system has no rational points: the statement never executes. *)

type loop_bounds = { var : string; lower : Ast.bterm list; upper : Ast.bterm list }

val scan_bounds :
  Constr.t list -> eliminate:string list -> scan:string list -> loop_bounds list
(** [scan_bounds cs ~eliminate ~scan] returns, for each scan variable
    (listed outermost first), its lower and upper bound terms in terms of
    outer scan variables and parameters (any variable in neither list);
    the [eliminate] variables are projected out first.
    @raise Infeasible when the system is empty. *)

val eliminate_rational : Constr.t list -> string -> Constr.t list
(** One variable-elimination step (equality substitution or real-shadow
    pairing), exposed for testing. *)
