(** LU factorization without pivoting, in two loop orders — a second
    imperfectly nested factorization used by the examples, tests and
    benches.  Both orders perform the identical per-cell operation
    sequence and therefore produce bit-identical factors. *)

val kij : float array array -> unit
(** Right-looking (the classical outer-product form). *)

val jki : float array array -> unit
(** Left-looking by columns. *)

val diagonally_dominant : ?seed:int -> int -> float array array
(** A deterministic random diagonally dominant matrix (LU without
    pivoting is stable on it). *)

val max_abs_diff : float array array -> float array array -> float
