lib/kernels/cholesky.ml: Array Float
