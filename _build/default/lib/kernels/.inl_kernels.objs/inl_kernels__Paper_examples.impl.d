lib/kernels/paper_examples.ml:
