lib/kernels/cholesky.mli:
