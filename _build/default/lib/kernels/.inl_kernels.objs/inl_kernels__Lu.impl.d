lib/kernels/lu.ml: Array Float
