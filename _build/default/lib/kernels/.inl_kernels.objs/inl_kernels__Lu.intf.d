lib/kernels/lu.mli:
