(* Six loop orders of in-place lower-triangular Cholesky.

   The arithmetic is identical across variants — only the traversal order
   changes — so all produce bit-identical factors on the same input
   (dependences force the per-entry operation order), which the test
   suite checks exactly. *)

let n_of a = Array.length a

(* right-looking, row-oriented updates *)
let kij a =
  let n = n_of a in
  for k = 0 to n - 1 do
    a.(k).(k) <- sqrt a.(k).(k);
    for i = k + 1 to n - 1 do
      a.(i).(k) <- a.(i).(k) /. a.(k).(k)
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to i do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(j).(k))
      done
    done
  done

(* right-looking, column-oriented updates (the paper's source form) *)
let kji a =
  let n = n_of a in
  for k = 0 to n - 1 do
    a.(k).(k) <- sqrt a.(k).(k);
    for i = k + 1 to n - 1 do
      a.(i).(k) <- a.(i).(k) /. a.(k).(k)
    done;
    for j = k + 1 to n - 1 do
      for i = j to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(j).(k))
      done
    done
  done

(* left-looking by columns *)
let jki a =
  let n = n_of a in
  for j = 0 to n - 1 do
    for k = 0 to j - 1 do
      for i = j to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(j).(k))
      done
    done;
    a.(j).(j) <- sqrt a.(j).(j);
    for i = j + 1 to n - 1 do
      a.(i).(j) <- a.(i).(j) /. a.(j).(j)
    done
  done

(* left-looking, dot-product inner loop *)
let jik a =
  let n = n_of a in
  for j = 0 to n - 1 do
    for i = j to n - 1 do
      for k = 0 to j - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(j).(k))
      done
    done;
    a.(j).(j) <- sqrt a.(j).(j);
    for i = j + 1 to n - 1 do
      a.(i).(j) <- a.(i).(j) /. a.(j).(j)
    done
  done

(* bordering: finish one row at a time *)
let ikj a =
  let n = n_of a in
  for i = 0 to n - 1 do
    for k = 0 to i - 1 do
      a.(i).(k) <- a.(i).(k) /. a.(k).(k);
      for j = k + 1 to i do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(j).(k))
      done
    done;
    a.(i).(i) <- sqrt a.(i).(i)
  done

(* bordering, dot-product inner loop *)
let ijk a =
  let n = n_of a in
  for i = 0 to n - 1 do
    for j = 0 to i do
      for k = 0 to j - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(j).(k))
      done;
      if j < i then a.(i).(j) <- a.(i).(j) /. a.(j).(j)
    done;
    a.(i).(i) <- sqrt a.(i).(i)
  done

type variant = { name : string; family : string; run : float array array -> unit }

let variants =
  [
    { name = "kij"; family = "right-looking (row updates)"; run = kij };
    { name = "kji"; family = "right-looking (column updates)"; run = kji };
    { name = "jki"; family = "left-looking (column)"; run = jki };
    { name = "jik"; family = "left-looking (dot product)"; run = jik };
    { name = "ikj"; family = "bordering (row)"; run = ikj };
    { name = "ijk"; family = "bordering (dot product)"; run = ijk };
  ]

let random_spd ?(seed = 7) n =
  let state = ref seed in
  let next () =
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFF) /. 65536.0
  in
  let b = Array.init n (fun _ -> Array.init n (fun _ -> next () -. 0.5)) in
  let a = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (b.(i).(k) *. b.(j).(k))
      done;
      a.(i).(j) <- !s +. if i = j then float_of_int n else 0.0
    done
  done;
  a

let copy_matrix a = Array.map Array.copy a

let max_abs_diff a b =
  let n = n_of a in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      m := Float.max !m (Float.abs (a.(i).(j) -. b.(i).(j)))
    done
  done;
  !m

let residual a l =
  let n = n_of a in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref 0.0 in
      for k = 0 to j do
        s := !s +. (l.(i).(k) *. l.(j).(k))
      done;
      m := Float.max !m (Float.abs (!s -. a.(i).(j)))
    done
  done;
  !m
