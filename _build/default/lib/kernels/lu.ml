(* LU factorization without pivoting, in two loop orders — a second
   imperfectly nested factorization used by the examples and benches. *)

let n_of a = Array.length a

(* right-looking (the classical kij form) *)
let kij a =
  let n = n_of a in
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      a.(i).(k) <- a.(i).(k) /. a.(k).(k);
      for j = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(k).(j))
      done
    done
  done

(* left-looking by columns *)
let jki a =
  let n = n_of a in
  for j = 0 to n - 1 do
    for k = 0 to j - 1 do
      for i = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(k).(j))
      done
    done;
    for i = j + 1 to n - 1 do
      a.(i).(j) <- a.(i).(j) /. a.(j).(j)
    done
  done

let diagonally_dominant ?(seed = 11) n =
  let state = ref seed in
  let next () =
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFF) /. 65536.0
  in
  Array.init n (fun i ->
      Array.init n (fun j -> (next () -. 0.5) +. if i = j then float_of_int n else 0.0))

let max_abs_diff a b =
  let n = n_of a in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      m := Float.max !m (Float.abs (a.(i).(j) -. b.(i).(j)))
    done
  done;
  !m
