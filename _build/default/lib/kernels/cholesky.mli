(** The six loop orders of dense Cholesky factorization as native float
    kernels — the benchmark subjects of the paper's motivating claim that
    "all six permutations of these three loops compute the same result,
    but their performance, even on sequential machines, can be quite
    different" (Section 1).

    All variants factor a symmetric positive-definite matrix in place
    into its lower-triangular Cholesky factor, reading and writing only
    the lower triangle: [A = L L^T].  Names follow the classical loop
    taxonomy (Ortega): the letters give the nesting order of the loops
    driving the update [A(i,j) -= A(i,k) * A(j,k)]. *)

type variant = {
  name : string;
  family : string;  (** right-looking / left-looking / bordering / dot-product *)
  run : float array array -> unit;
}

val kij : float array array -> unit
val kji : float array array -> unit
val jki : float array array -> unit
val jik : float array array -> unit
val ikj : float array array -> unit
val ijk : float array array -> unit

val variants : variant list
(** All six, in taxonomy order. *)

val random_spd : ?seed:int -> int -> float array array
(** A deterministic random symmetric positive-definite matrix. *)

val copy_matrix : float array array -> float array array

val max_abs_diff : float array array -> float array array -> float
(** Over the lower triangles. *)

val residual : float array array -> float array array -> float
(** [residual a l]: max abs element of [l l^T - a] over the lower
    triangle — a correctness measure for a computed factor. *)
