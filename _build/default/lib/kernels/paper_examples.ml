(* The paper's example programs in the surface language, shared by tests,
   examples and benches. *)

(* Figure 1's running example (with affine stand-ins for f(I)..g(I)). *)
let figure1 =
  "params N\n\
   do I = 1..N\n\
  \  do J = I..N\n\
  \    S1: A(I,J) = 1\n\
  \    S2: B(I,J) = 2\n\
  \  enddo\n\
  \  S3: C(I) = 3\n\
   enddo\n"

(* Section 3's simplified Cholesky. *)
let simplified_cholesky =
  "params N\n\
   do I = 1..N\n\
  \  S1: A(I) = sqrt(A(I))\n\
  \  do J = I+1..N\n\
  \    S2: A(J) = A(J) / A(I)\n\
  \  enddo\n\
   enddo\n"

(* Section 5.4's augmentation example. *)
let augmentation_example =
  "params N\n\
   do I = 1..N\n\
  \  S1: B(I) = B(I-1) + A(I-1,I+1)\n\
  \  do J = I..N\n\
  \    S2: A(I,J) = f()\n\
  \  enddo\n\
   enddo\n"

(* Section 6's full Cholesky factorization (right-looking). *)
let cholesky =
  "params N\n\
   do K = 1..N\n\
  \  S1: A[K][K] = sqrt(A[K][K])\n\
  \  do I = K+1..N\n\
  \    S2: A[I][K] = A[I][K] / A[K][K]\n\
  \  enddo\n\
  \  do J = K+1..N\n\
  \    do L = K+1..J\n\
  \      S3: A[J][L] = A[J][L] - A[J][K] * A[L][K]\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

(* The update statement's perfect nest, alone. *)
let cholesky_update_kernel =
  "params N\n\
   do K = 1..N\n\
  \  do J = K+1..N\n\
  \    do L = K+1..J\n\
  \      S3: A(J,L) = A(J,L) - A(J,K) * A(L,K)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

(* LU factorization without pivoting, right-looking. *)
let lu =
  "params N\n\
   do K = 1..N\n\
  \  do I = K+1..N\n\
  \    S1: A(I,K) = A(I,K) / A(K,K)\n\
  \    do J = K+1..N\n\
  \      S2: A(I,J) = A(I,J) - A(I,K) * A(K,J)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

(* The corrected Section 6 completion matrix (left-looking Cholesky);
   see EXPERIMENTS.md E12 for why the paper's printed first row is
   inconsistent with its own final code. *)
let corrected_c_rows =
  [
    [ 0; 0; 0; 0; 0; 1; 0 ];
    [ 0; 0; 1; 0; 0; 0; 0 ];
    [ 0; 0; 0; 1; 0; 0; 0 ];
    [ 0; 1; 0; 0; 0; 0; 0 ];
    [ 0; 0; 0; 0; 0; 0; 1 ];
    [ 0; 0; 0; 0; 1; 0; 0 ];
    [ 1; 0; 0; 0; 0; 0; 0 ];
  ]

let paper_c_printed_rows =
  [
    [ 0; 0; 0; 0; 1; 0; 0 ];
    [ 0; 0; 1; 0; 0; 0; 0 ];
    [ 0; 0; 0; 1; 0; 0; 0 ];
    [ 0; 1; 0; 0; 0; 0; 0 ];
    [ 1; 0; 0; 0; 0; 0; 0 ];
    [ 0; 0; 0; 0; 0; 1; 0 ];
    [ 0; 0; 0; 0; 0; 0; 1 ];
  ]

(* The Section 5.4/5.5 transformation matrix (skew the outer loop by the
   inner, swap the statement order). *)
let section55_matrix_rows =
  [ [ 1; 0; 0; -1 ]; [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 0; 1 ] ]

(* The six classical loop orders of Cholesky as surface programs: every
   variant performs the identical per-cell operation sequence, so the
   interpreter checks them exactly equal to the right-looking form, and
   their memory traces drive the cache-locality experiment (E13). *)

let cholesky_kij =
  "params N\n\
   do K = 1..N\n\
  \  S1: A(K,K) = sqrt(A(K,K))\n\
  \  do I = K+1..N\n\
  \    S2: A(I,K) = A(I,K) / A(K,K)\n\
  \  enddo\n\
  \  do I2 = K+1..N\n\
  \    do J = K+1..I2\n\
  \      S3: A(I2,J) = A(I2,J) - A(I2,K) * A(J,K)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

let cholesky_kji =
  "params N\n\
   do K = 1..N\n\
  \  S1: A(K,K) = sqrt(A(K,K))\n\
  \  do I = K+1..N\n\
  \    S2: A(I,K) = A(I,K) / A(K,K)\n\
  \  enddo\n\
  \  do J = K+1..N\n\
  \    do I2 = J..N\n\
  \      S3: A(I2,J) = A(I2,J) - A(I2,K) * A(J,K)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

let cholesky_jki =
  "params N\n\
   do J = 1..N\n\
  \  do K = 1..J-1\n\
  \    do I = J..N\n\
  \      S3: A(I,J) = A(I,J) - A(I,K) * A(J,K)\n\
  \    enddo\n\
  \  enddo\n\
  \  S1: A(J,J) = sqrt(A(J,J))\n\
  \  do I2 = J+1..N\n\
  \    S2: A(I2,J) = A(I2,J) / A(J,J)\n\
  \  enddo\n\
   enddo\n"

let cholesky_jik =
  "params N\n\
   do J = 1..N\n\
  \  do I = J..N\n\
  \    do K = 1..J-1\n\
  \      S3: A(I,J) = A(I,J) - A(I,K) * A(J,K)\n\
  \    enddo\n\
  \  enddo\n\
  \  S1: A(J,J) = sqrt(A(J,J))\n\
  \  do I2 = J+1..N\n\
  \    S2: A(I2,J) = A(I2,J) / A(J,J)\n\
  \  enddo\n\
   enddo\n"

let cholesky_ikj =
  "params N\n\
   do I = 1..N\n\
  \  do K = 1..I-1\n\
  \    S2: A(I,K) = A(I,K) / A(K,K)\n\
  \    do J = K+1..I\n\
  \      S3: A(I,J) = A(I,J) - A(I,K) * A(J,K)\n\
  \    enddo\n\
  \  enddo\n\
  \  S1: A(I,I) = sqrt(A(I,I))\n\
   enddo\n"

let cholesky_ijk =
  "params N\n\
   do I = 1..N\n\
  \  do J = 1..I-1\n\
  \    do K = 1..J-1\n\
  \      S3: A(I,J) = A(I,J) - A(I,K) * A(J,K)\n\
  \    enddo\n\
  \    S2: A(I,J) = A(I,J) / A(J,J)\n\
  \  enddo\n\
  \  do K2 = 1..I-1\n\
  \    S4: A(I,I) = A(I,I) - A(I,K2) * A(I,K2)\n\
  \  enddo\n\
  \  S1: A(I,I) = sqrt(A(I,I))\n\
   enddo\n"

let cholesky_ir_variants =
  [
    ("kij", cholesky_kij);
    ("kji", cholesky_kji);
    ("jki", cholesky_jki);
    ("jik", cholesky_jik);
    ("ikj", cholesky_ikj);
    ("ijk", cholesky_ijk);
  ]
