type t = { num : Mpz.t; den : Mpz.t }

let make num den =
  if Mpz.is_zero den then raise Division_by_zero;
  if Mpz.is_zero num then { num = Mpz.zero; den = Mpz.one }
  else begin
    let num, den = if Mpz.is_negative den then (Mpz.neg num, Mpz.neg den) else (num, den) in
    let g = Mpz.gcd num den in
    if Mpz.is_one g then { num; den }
    else { num = fst (Mpz.divmod num g); den = fst (Mpz.divmod den g) }
  end

let of_mpz n = { num = n; den = Mpz.one }
let of_int n = of_mpz (Mpz.of_int n)
let of_ints n d = make (Mpz.of_int n) (Mpz.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let add a b = make (Mpz.add (Mpz.mul a.num b.den) (Mpz.mul b.num a.den)) (Mpz.mul a.den b.den)
let sub a b = make (Mpz.sub (Mpz.mul a.num b.den) (Mpz.mul b.num a.den)) (Mpz.mul a.den b.den)
let mul a b = make (Mpz.mul a.num b.num) (Mpz.mul a.den b.den)
let div a b = make (Mpz.mul a.num b.den) (Mpz.mul a.den b.num)
let neg a = { a with num = Mpz.neg a.num }
let abs a = { a with num = Mpz.abs a.num }
let inv a = make a.den a.num

let sign a = Mpz.sign a.num
let compare a b = Mpz.compare (Mpz.mul a.num b.den) (Mpz.mul b.num a.den)
let equal a b = Mpz.equal a.num b.num && Mpz.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_zero a = Mpz.is_zero a.num
let is_integer a = Mpz.is_one a.den

let floor a = Mpz.fdiv a.num a.den
let ceil a = Mpz.cdiv a.num a.den

let to_mpz_exn a =
  if is_integer a then a.num else failwith "Q.to_mpz_exn: not an integer"

let to_string a =
  if is_integer a then Mpz.to_string a.num
  else Mpz.to_string a.num ^ "/" ^ Mpz.to_string a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
