lib/num/q.mli: Format Mpz
