lib/num/mpz.mli: Format
