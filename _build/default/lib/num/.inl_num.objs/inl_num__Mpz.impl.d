lib/num/mpz.ml: Array Buffer Char Format Hashtbl List Stdlib String
