lib/num/q.ml: Format Mpz
