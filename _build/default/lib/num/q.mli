(** Arbitrary-precision rationals over {!Mpz}.

    Values are kept canonical: the denominator is strictly positive and
    [gcd num den = 1], so structural equality coincides with numeric
    equality.  Used for exact linear algebra (inverses, nullspaces,
    Gaussian elimination) in the transformation framework. *)

type t = private { num : Mpz.t; den : Mpz.t }

val make : Mpz.t -> Mpz.t -> t
(** [make num den] is the reduced rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_mpz : Mpz.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> Mpz.t
val den : t -> Mpz.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_integer : t -> bool

val floor : t -> Mpz.t
val ceil : t -> Mpz.t

val to_mpz_exn : t -> Mpz.t
(** @raise Failure if the value is not an integer. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
