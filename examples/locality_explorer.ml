(* Why loop order matters (Section 1): the six Cholesky variants compute
   the same factor but touch memory in very different orders.  This
   example replays each variant's access trace through the cache
   simulator and times the native kernels.

   Run with:  dune exec examples/locality_explorer.exe *)

module Px = Inl_kernels.Paper_examples
module Cholesky = Inl_kernels.Cholesky
module Cachesim = Inl_cachesim.Cachesim
module Interp = Inl_interp.Interp

let () =
  let n = 48 in
  let cfg = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2 in
  Printf.printf
    "Cache: %d KiB, %d-way, %dB lines; Cholesky N = %d (IR traces)\n\n"
    (Cachesim.capacity_bytes cfg / 1024)
    (Cachesim.assoc cfg) (Cachesim.line_bytes cfg) n;
  Printf.printf "%-6s %-32s %10s %10s %8s\n" "order" "family" "accesses" "misses" "miss%";
  let base = Inl.Parser.parse_exn Px.cholesky_kji in
  List.iter
    (fun (name, src) ->
      let prog = Inl.Parser.parse_exn src in
      (* sanity: same factorization *)
      (match Interp.equivalent base prog ~params:[ ("N", 12) ] with
      | Ok () -> ()
      | Error d -> failwith (name ^ " differs: " ^ d));
      let stats = Cachesim.simulate_program cfg [ ("A", [ n; n ]) ] prog ~params:[ ("N", n) ] in
      let family =
        match List.find_opt (fun (v : Cholesky.variant) -> v.name = name) Cholesky.variants with
        | Some v -> v.family
        | None -> "-"
      in
      Printf.printf "%-6s %-32s %10d %10d %7.2f%%\n" name family stats.Cachesim.accesses
        stats.Cachesim.misses
        (100.0 *. Cachesim.miss_rate stats))
    Px.cholesky_ir_variants;

  (* native wall-clock at a larger size *)
  let n2 = 192 in
  Printf.printf "\nNative kernels, N = %d (median of 5 runs):\n" n2;
  let a0 = Cholesky.random_spd n2 in
  List.iter
    (fun (v : Cholesky.variant) ->
      let times =
        List.init 5 (fun _ ->
            let a = Cholesky.copy_matrix a0 in
            let t0 = Sys.time () in
            v.run a;
            Sys.time () -. t0)
        |> List.sort compare
      in
      Printf.printf "  %-4s %8.2f ms\n" v.name (1000.0 *. List.nth times 2))
    Cholesky.variants
