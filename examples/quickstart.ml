(* Quickstart: analyze the paper's simplified Cholesky (Section 3), print
   its dependence matrix, build the legal loop permutation (interchange
   composed with statement reordering), generate code, and verify it
   against the original in the interpreter.

   Run with:  dune exec examples/quickstart.exe *)

module Interp = Inl_interp.Interp

let src = Inl_kernels.Paper_examples.simplified_cholesky

let () =
  print_endline "=== source program (Section 3) ===";
  print_string src;
  let ctx = Inl.analyze_source src in

  print_endline "\n=== instance-vector layout ===";
  Format.printf "@[<v>%a@]@." Inl.Layout.pp_positions ctx.Inl.layout;

  print_endline "=== dependence matrix (one column per dependence) ===";
  Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;

  (* A bare I<->J interchange is illegal: the legality test explains why. *)
  let bare = Inl.Tmat.interchange ctx.Inl.layout "I" "J" in
  (match Inl.check ctx bare with
  | Inl.Legality.Illegal msg -> Printf.printf "\nbare interchange rejected: %s\n" msg
  | Inl.Legality.Legal _ -> assert false);

  (* The legal permutation runs the inner loop's statements first. *)
  let m =
    Inl.Tmat.compose
      (Inl.Tmat.interchange ctx.Inl.layout "I" "J")
      (Inl.Tmat.reorder ctx.Inl.layout ~parent:[ 0 ] ~perm:[ 1; 0 ])
  in
  print_endline "\n=== interchange . reorder: transformation matrix ===";
  Format.printf "%a@." Inl.Mat.pp m;

  match Inl.transform ctx m with
  | Error ds -> Printf.printf "unexpectedly illegal: %s\n" (Inl.Diag.list_to_string ds)
  | Ok prog ->
      print_endline "\n=== transformed program ===";
      print_endline (Inl.Pp.program_to_string prog);
      List.iter
        (fun n ->
          match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
          | Ok () -> Printf.printf "N = %2d: transformed program equivalent to the original\n" n
          | Error d -> Printf.printf "N = %2d: DIFFERS (%s)\n" n d)
        [ 1; 4; 10 ]
