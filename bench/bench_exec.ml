(* Execution benchmark: wall-clock of real (domain-parallel) runs of
   DOALL schedules, emitting BENCH_exec.json via `make exec-bench`.

   Each row executes one (kernel, schedule) pair through the exec
   runtime: the sequential interpreter and the planned parallel
   execution are both timed min-of-N, and no timing is reported for a
   row whose parallel store is not byte-identical to the sequential one
   (the runtime's differential gate).  The schedule column is the
   point: seidel1d has no DOALL dimension at identity (the row records
   the typed degradation), and the same kernel under the wavefront
   recipe (skew the time loop into the space loop, then interchange)
   gains an inner parallel dimension — the classic transformation,
   executed rather than claimed.

   The report is honest about hardware: it prints the detected core
   count next to the requested worker count, and on a single-core box
   the parallel rows are a determinism check, not a speedup claim.

   `--smoke` (wired into `dune runtest` and `make exec-smoke`) asserts
   the pinned per-row outcome labels — plan and differential verdict,
   never wall time — with all timings masked, so the tier-1 gate stays
   byte-deterministic.

   `--guard FILE` (wired into `make exec-guard` and the opt-in
   `@exec-guard` dune alias) re-runs the workload and fails if any
   row's label, DOALL count or plan drifted from the committed FILE;
   wall-clock fields are never compared. *)

module Px = Inl_kernels.Paper_examples
module Search = Inl_search.Search
module Tf = Inl_fuzz.Tf
module Exec = Inl_exec.Exec
module Doall = Inl_verify.Doall
module Json = Inl_serve.Json

let out_path = ref ""
let jobs = ref 2
let repeat = ref 3
let size = ref 64
let smoke = ref false
let guard_path = ref ""

(* ---- workload ---- *)

let jacobi1d =
  "params T\n\
   params N\n\
   do K = 1..T\n\
  \  do I = 2..N-1\n\
  \    S1: A(K,I) = A(K-1,I-1) + A(K-1,I) + A(K-1,I+1)\n\
  \  enddo\n\
   enddo\n"

let seidel1d =
  "params T\n\
   params N\n\
   do K = 1..T\n\
  \  do I = 2..N-1\n\
  \    S1: A(I) = A(I-1) + A(I) + A(I+1)\n\
  \  enddo\n\
   enddo\n"

(* skew the space loop by twice the time loop, then interchange: the
   wavefront schedule that turns a time-iterated stencil's inner
   dimension DOALL (lib/search enumerates the same pair as one
   compound move) *)
let wavefront = [ ("skew", "I,K,2"); ("interchange", "K,I") ]

(* identity rows run the source program as written (original loop
   names); non-empty recipes go through materialize + transform, whose
   generated code renames loops t1..tn *)
let transformed src steps =
  let ctx = Inl.analyze_source src in
  if steps = [] then ctx.Inl.program
  else
    match Tf.materialize ctx { Tf.steps; partial = []; edits = [] } with
    | Error m -> failwith ("recipe does not materialize: " ^ m)
    | Ok mat -> Inl.transform_exn ctx mat

(* the `make search-smoke` search configuration: the winner this finds
   is the one bench_search pins, and here it is executed for real *)
let search_config =
  { Search.default_config with Search.beam = 4; depth = 2; finalists = 3; size = 16 }

let search_winner src =
  let ctx = Inl.analyze_source src in
  let o = Search.optimize ~config:search_config ctx in
  match o.Search.winner with
  | Some w -> (
      match w.Search.program with
      | Some p -> (Search.recipe_line w.Search.recipe, p)
      | None -> failwith "search winner has no program")
  | None -> failwith "search found no winner"

type row = { name : string; schedule : string; prog : Inl.Ast.program }

let rows () =
  let winner_recipe, winner_prog = search_winner Px.cholesky_kji in
  [
    { name = "cholesky"; schedule = "identity"; prog = transformed Px.cholesky_kji [] };
    { name = "cholesky"; schedule = "search:" ^ winner_recipe; prog = winner_prog };
    { name = "jacobi1d"; schedule = "identity"; prog = transformed jacobi1d [] };
    { name = "jacobi1d"; schedule = "wavefront(f=2)"; prog = transformed jacobi1d wavefront };
    { name = "seidel1d"; schedule = "identity"; prog = transformed seidel1d [] };
    { name = "seidel1d"; schedule = "wavefront(f=2)"; prog = transformed seidel1d wavefront };
  ]

(* pinned by --smoke: the plan and differential verdict for every row,
   wall-time-free by construction *)
let expected_labels =
  [
    ("cholesky/identity", "ok:doall=I");
    ("jacobi1d/identity", "ok:doall=I");
    ("jacobi1d/wavefront(f=2)", "ok:doall=t2");
    ("seidel1d/identity", "degraded:X901");
    ("seidel1d/wavefront(f=2)", "ok:doall=t2");
  ]

type result_row = {
  row : row;
  label : string;
  report : (Exec.report, Inl_diag.Diag.t list) result;
}

let run_row r =
  let params = List.map (fun p -> (p, !size)) r.prog.Inl.Ast.params in
  let report = Exec.benchmark ~jobs:!jobs ~repeat:!repeat r.prog ~params in
  { row = r; label = Exec.label report; report }

let json_of_row ~timings (rr : result_row) =
  let jstr s = Json.to_string (Json.String s) in
  let common =
    Printf.sprintf "\"name\": %s, \"schedule\": %s, \"label\": %s" (jstr rr.row.name)
      (jstr rr.row.schedule) (jstr rr.label)
  in
  match rr.report with
  | Error _ -> Printf.sprintf "    {%s}" common
  | Ok r ->
      let ms v = if timings then Printf.sprintf "%.3f" v else "0.0" in
      Printf.sprintf
        "    {%s, \"plan\": %s, \"doall\": %d, \"loops\": %d, \"cells\": %d, \"seq_ms\": %s, \
         \"par_ms\": %s, \"speedup\": %s}"
        common
        (jstr (match Exec.plan_var r.Exec.plan with Some v -> "par:" ^ v | None -> "seq"))
        (Exec.doall_count r.Exec.doall) r.Exec.loops r.Exec.cells (ms r.Exec.seq_ms)
        (ms r.Exec.par_ms)
        (if timings then Printf.sprintf "%.2f" (Exec.speedup r) else "0.0")

(* ---- drift guard: compare against a committed report ---- *)

let stable_fields = [ "label"; "plan"; "doall"; "loops" ]

let row_map doc =
  match Json.member "rows" doc with
  | Some (Json.List rs) ->
      Ok
        (List.filter_map
           (fun r ->
             match (Json.string_field "name" r, Json.string_field "schedule" r) with
             | Some n, Some s -> Some (n ^ "/" ^ s, r)
             | _ -> None)
           rs)
  | _ -> Error "no \"rows\" list"

let run_guard ~path current =
  let baseline =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let parse what text =
    match Json.parse text with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "exec-guard: %s does not parse: %s\n" what e;
        exit 2
  in
  let keyed what doc =
    match row_map doc with
    | Ok m -> m
    | Error e ->
        Printf.eprintf "exec-guard: %s: %s\n" what e;
        exit 2
  in
  let bks = keyed "baseline" (parse "baseline" baseline) in
  let cks = keyed "fresh report" (parse "fresh report" current) in
  let failures = ref [] in
  let note fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  let repr k f = match Json.member f k with None -> "<absent>" | Some v -> Json.to_string v in
  List.iter
    (fun (key, bk) ->
      match List.assoc_opt key cks with
      | None -> note "row %S: in the baseline but not the fresh report" key
      | Some ck ->
          List.iter
            (fun f ->
              let b = repr bk f and c = repr ck f in
              if b <> c then note "row %S: %s drifted: committed %s, got %s" key f b c)
            stable_fields)
    bks;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key bks) then
        note "row %S: in the fresh report but not the baseline" key)
    cks;
  match List.rev !failures with
  | [] -> Printf.printf "exec-guard PASS: %d rows stable\n" (List.length bks)
  | fs ->
      List.iter (fun f -> Printf.eprintf "exec-guard FAIL: %s\n" f) fs;
      exit 1

let () =
  let speclist =
    [
      ("--jobs", Arg.Set_int jobs, "N worker domains for the parallel execution (default 2)");
      ("--repeat", Arg.Set_int repeat, "K timing runs per variant, minimum reported (default 3)");
      ("--size", Arg.Set_int size, "N problem size every parameter is bound to (default 64)");
      ("--smoke", Arg.Set smoke, " mask timings and assert the pinned per-row labels");
      ( "--guard",
        Arg.Set_string guard_path,
        "FILE fail if any row's label/plan/doall drifted from the committed FILE" );
      ("-o", Arg.Set_string out_path, "FILE write the JSON report here (default: stdout)");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_exec [--jobs N] [--repeat K] [--size N] [--smoke] [--guard FILE] [-o FILE]";
  if !smoke then begin
    (* small and fixed: the smoke gate pins shape, never speed *)
    size := 16;
    repeat := 1
  end;
  let results = List.map run_row (rows ()) in
  let timings = not !smoke in
  let cores = Domain.recommended_domain_count () in
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"inl-exec-bench-v1\",\n\
      \  \"cores\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"repeat\": %d,\n\
      \  \"size\": %d,\n\
      \  \"timings\": %b,\n\
      \  \"rows\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      cores !jobs !repeat !size timings
      (String.concat ",\n" (List.map (json_of_row ~timings) results))
  in
  (match !out_path with
  | "" -> print_string json
  | path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc);
  (* every row must pass the differential gate (or degrade with a
     typed note); an X801 divergence is a bench failure outright *)
  List.iter
    (fun rr ->
      match rr.report with
      | Error ds ->
          Printf.eprintf "FAIL: %s/%s: %s\n" rr.row.name rr.row.schedule
            (Inl_diag.Diag.list_to_string ds);
          exit 1
      | Ok _ -> ())
    results;
  if !smoke then
    List.iter
      (fun (key, expected) ->
        match
          List.find_opt (fun rr -> rr.row.name ^ "/" ^ rr.row.schedule = key) results
        with
        | None -> ()
        | Some rr ->
            if rr.label <> expected then begin
              Printf.eprintf "FAIL: smoke label drifted for %s: expected %S, got %S\n" key
                expected rr.label;
              exit 1
            end)
      expected_labels;
  if !guard_path <> "" then run_guard ~path:!guard_path json
