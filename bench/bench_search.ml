(* Autotuner benchmark: wall-clock and candidate throughput of
   `Search.optimize` on the paper's kji Cholesky at jobs=1 vs jobs=N,
   emitting a JSON report (BENCH_search.json via `make bench-json`).

   The workload renders the full outcome — every finalist's recipe,
   scores and generated code plus the winner — into a byte buffer, and
   the benchmark fails loudly if the parallel configuration disagrees
   with the sequential one on a single byte: the search's determinism
   contract, measured rather than assumed.

   `--smoke` (wired into `dune runtest` and `make search-smoke`) runs a
   tiny fixed-seed search and asserts the pinned winner recipe, so the
   tier-1 gate notices if the search's ranking ever drifts. *)

module Px = Inl_kernels.Paper_examples
module Search = Inl_search.Search
module Tf = Inl_fuzz.Tf
module Pool = Inl.Pool

let out_path = ref ""
let par_jobs = ref 4
let smoke = ref false

(* The `make search-smoke` configuration: small enough to run inside the
   test suite, big enough that the beam has real choices to make. *)
let smoke_config =
  {
    Search.default_config with
    Search.beam = 4;
    depth = 2;
    finalists = 3;
    size = 16;
  }

let smoke_winner = "complete row=[0,0,0,0,1,0,0]"

let render (o : Search.outcome) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "source misses=%s\n"
       (match o.Search.source_misses with Some m -> string_of_int m | None -> "-"));
  List.iter
    (fun (e : Search.entry) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %.6f %s\n%s" e.Search.rank
           (Search.recipe_line e.Search.recipe)
           e.Search.static_score
           (match e.Search.misses with Some m -> string_of_int m | None -> "-")
           (match e.Search.program with Some p -> Inl.Pp.program_to_string p | None -> "")))
    o.Search.entries;
  Buffer.add_string b
    (match o.Search.winner with
    | Some w -> "winner " ^ Search.recipe_line w.Search.recipe ^ "\n"
    | None -> "no winner\n");
  Buffer.contents b

type outcome = {
  name : string;
  jobs : int;
  effective_jobs : int;
  wall_s : float;
  wall_cold_s : float;  (* first pass: process-wide memos empty *)
  wall_warm_s : float;  (* second pass: signature/simulation memos hot *)
  candidates : int;
  output : string;
  result : Search.outcome;
}

let run_config ~name ~jobs config : outcome =
  Pool.set_jobs jobs;
  Inl.Stats.reset ();
  let ctx = Inl.analyze_source Px.cholesky_kji in
  (* one cold pass, two warm passes, best wall time: the minimum
     suppresses scheduler noise, and — since the reuse-signature and
     trace-simulation memos are process-wide — it measures the
     steady-state throughput an interactive or serving process sees
     after its first search over a program *)
  let pass () =
    let t0 = Unix.gettimeofday () in
    let r = Search.optimize ~config ctx in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, pass1 = pass () in
  let r2, pass2 = pass () in
  let _, pass3 = pass () in
  let output = render r1 in
  if not (String.equal output (render r2)) then (
    prerr_endline "FAIL: two passes of one configuration disagreed";
    exit 1);
  {
    name;
    jobs;
    effective_jobs = Pool.jobs ();
    wall_s = Float.min pass1 (Float.min pass2 pass3);
    wall_cold_s = pass1;
    wall_warm_s = Float.min pass2 pass3;
    candidates = r1.Search.funnel.Search.generated;
    output;
    result = r1;
  }

let candidates_per_s (o : outcome) =
  if o.wall_s > 0.0 then float_of_int o.candidates /. o.wall_s else 0.0

let json_of_outcome (o : outcome) : string =
  Printf.sprintf
    "    {\"name\": %S, \"jobs\": %d, \"effective_jobs\": %d, \"wall_s\": %.6f, \
     \"wall_cold_s\": %.6f, \"wall_warm_s\": %.6f, \"candidates\": %d, \
     \"candidates_per_s\": %.1f, \"reuse_classes\": %d, \"reuse_pruned\": %d, \
     \"sim_shared\": %d}"
    o.name o.jobs o.effective_jobs o.wall_s o.wall_cold_s o.wall_warm_s o.candidates
    (candidates_per_s o) o.result.Search.funnel.Search.reuse_classes
    o.result.Search.funnel.Search.reuse_pruned o.result.Search.funnel.Search.sim_shared

let () =
  let speclist =
    [
      ("--jobs", Arg.Set_int par_jobs, "N worker domains for the parallel configuration");
      ("--smoke", Arg.Set smoke, " tiny fixed-seed search with a pinned winner");
      ("-o", Arg.Set_string out_path, "FILE write the JSON report here (default: stdout)");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_search [--jobs N] [--smoke] [-o FILE]";
  let config = if !smoke then smoke_config else Search.default_config in
  let outcomes =
    [
      run_config ~name:"jobs1" ~jobs:1 config;
      run_config ~name:(Printf.sprintf "jobs%d" !par_jobs) ~jobs:!par_jobs config;
    ]
  in
  let baseline = List.hd outcomes and best = List.nth outcomes 1 in
  let equal = String.equal baseline.output best.output in
  let winner_line =
    match baseline.result.Search.winner with
    | Some w -> Search.recipe_line w.Search.recipe
    | None -> "none"
  in
  let winner_misses =
    match baseline.result.Search.winner with
    | Some { Search.misses = Some m; _ } -> string_of_int m
    | _ -> "null"
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"optimize kji cholesky (beam=%d depth=%d finalists=%d size=%d seed=%d)\",\n\
      \  \"configs\": [\n\
       %s\n\
      \  ],\n\
      \  \"winner\": %S,\n\
      \  \"winner_misses\": %s,\n\
      \  \"source_misses\": %s,\n\
      \  \"outputs_byte_equal\": %b,\n\
      \  \"speedup\": %.2f,\n\
      \  \"candidates_per_sec\": %.1f,\n\
      \  \"reuse_pruned\": %d\n\
       }\n"
      config.Search.beam config.Search.depth config.Search.finalists config.Search.size
      config.Search.seed
      (String.concat ",\n" (List.map json_of_outcome outcomes))
      winner_line winner_misses
      (match baseline.result.Search.source_misses with
      | Some m -> string_of_int m
      | None -> "null")
      equal
      (if best.wall_s > 0.0 then baseline.wall_s /. best.wall_s else 0.0)
      (candidates_per_s baseline)
      baseline.result.Search.funnel.Search.reuse_pruned
  in
  (match !out_path with
  | "" -> print_string json
  | path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc);
  if not equal then (
    prerr_endline "FAIL: jobs=1 and jobs=N produced different outputs";
    exit 1);
  if !smoke && not (String.equal winner_line smoke_winner) then (
    Printf.eprintf "FAIL: smoke winner drifted: expected %S, got %S\n" smoke_winner winner_line;
    exit 1)
