(* Autotuner benchmark: wall-clock and candidate throughput of
   `Search.optimize` on the paper's kji Cholesky at jobs=1 vs jobs=N,
   emitting a JSON report (BENCH_search.json via `make bench-json`).

   The workload renders the full outcome — every finalist's recipe,
   scores and generated code plus the winner — into a byte buffer, and
   the benchmark fails loudly if the parallel configuration disagrees
   with the sequential one on a single byte: the search's determinism
   contract, measured rather than assumed.

   The report is honest about hardware: it prints the detected core
   count, the effective worker count the pool actually granted, and a
   warning field whenever `effective_jobs < jobs` — on a single-core
   box a jobs=4 row is a determinism check, not a speedup claim.  Each
   config row also carries the incremental-evaluation counters (delta
   legality inherit rate, memo hit rates) so the throughput number can
   be audited from the JSON artifact alone.

   `--smoke` (wired into `dune runtest` and `make search-smoke`) runs a
   tiny fixed-seed search and asserts the pinned winner recipe, so the
   tier-1 gate notices if the search's ranking ever drifts.

   `--guard FILE` (wired into `make perf-guard` and the opt-in
   `@perf-guard` dune alias) re-runs the default workload and fails if
   throughput regressed below 50% of the committed FILE's
   candidates_per_sec, or if the winner recipe / miss count changed. *)

module Px = Inl_kernels.Paper_examples
module Search = Inl_search.Search
module Tf = Inl_fuzz.Tf
module Pool = Inl.Pool
module Memo = Inl_diag.Memo
module Json = Inl_serve.Json

let out_path = ref ""
let par_jobs = ref 4
let smoke = ref false
let guard_path = ref ""

(* The `make search-smoke` configuration: small enough to run inside the
   test suite, big enough that the beam has real choices to make. *)
let smoke_config =
  {
    Search.default_config with
    Search.beam = 4;
    depth = 2;
    finalists = 3;
    size = 16;
  }

let smoke_winner = "complete row=[0,0,0,0,1,0,0]"

let render (o : Search.outcome) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "source misses=%s\n"
       (match o.Search.source_misses with Some m -> string_of_int m | None -> "-"));
  List.iter
    (fun (e : Search.entry) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %.6f %s\n%s" e.Search.rank
           (Search.recipe_line e.Search.recipe)
           e.Search.static_score
           (match e.Search.misses with Some m -> string_of_int m | None -> "-")
           (match e.Search.program with Some p -> Inl.Pp.program_to_string p | None -> "")))
    o.Search.entries;
  Buffer.add_string b
    (match o.Search.winner with
    | Some w -> "winner " ^ Search.recipe_line w.Search.recipe ^ "\n"
    | None -> "no winner\n");
  Buffer.contents b

(* hits/misses of one process-wide memo accrued during one config's
   passes: the difference of two cumulative snapshots *)
type memo_delta = { m_hits : int; m_misses : int }

let memo_rate d =
  let lookups = d.m_hits + d.m_misses in
  if lookups = 0 then 0.0 else float_of_int d.m_hits /. float_of_int lookups

type outcome = {
  name : string;
  jobs : int;
  effective_jobs : int;
  wall_s : float;
  wall_cold_s : float;  (* first pass: process-wide memos empty *)
  wall_warm_s : float;  (* second pass: signature/simulation memos hot *)
  candidates : int;
  delta_inherited : int;  (* legality verdicts inherited from the parent state *)
  delta_checked : int;  (* legality verdicts that had to be recomputed *)
  legality_memo : memo_delta;  (* process-wide verdict memo *)
  mat_memo : memo_delta;  (* pipeline-prefix + completion materialization memos *)
  trace_memo : memo_delta;  (* simulation-result memo *)
  output : string;
  result : Search.outcome;
}

let warning_of (o : outcome) ~cores =
  if o.effective_jobs < o.jobs then
    Some
      (Printf.sprintf "requested %d jobs but only %d effective (%d core%s detected)" o.jobs
         o.effective_jobs cores
         (if cores = 1 then "" else "s"))
  else None

let snap () =
  let l = Inl.Legality.memo_stats () in
  let p = Search.mat_cache_stats () in
  let c = Search.completion_cache_stats () in
  let t = Search.trace_cache_stats () in
  (l, p, c, t)

let run_config ~name ~jobs config : outcome =
  Pool.set_jobs jobs;
  Inl.Stats.reset ();
  Inl.Legality.reset_delta_stats ();
  let l0, p0, c0, t0 = snap () in
  let ctx = Inl.analyze_source Px.cholesky_kji in
  (* one cold pass, four warm passes, best wall time: the minimum
     suppresses scheduler noise, and — since the verdict, materialization,
     signature and simulation memos are process-wide — it measures the
     steady-state throughput an interactive or serving process sees
     after its first search over a program *)
  let pass () =
    let t0 = Unix.gettimeofday () in
    let r = Search.optimize ~config ctx in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, pass1 = pass () in
  let r2, pass2 = pass () in
  let warm =
    List.fold_left (fun acc () -> Float.min acc (snd (pass ()))) pass2 [ (); (); () ]
  in
  let output = render r1 in
  if not (String.equal output (render r2)) then (
    prerr_endline "FAIL: two passes of one configuration disagreed";
    exit 1);
  let l1, p1, c1, t1 = snap () in
  let d (b : Memo.stats) (a : Memo.stats) =
    { m_hits = a.Memo.hits - b.Memo.hits; m_misses = a.Memo.misses - b.Memo.misses }
  in
  let sum x y = { m_hits = x.m_hits + y.m_hits; m_misses = x.m_misses + y.m_misses } in
  let inherited, checked = Inl.Legality.delta_stats () in
  {
    name;
    jobs;
    effective_jobs = Pool.jobs ();
    wall_s = Float.min pass1 warm;
    wall_cold_s = pass1;
    wall_warm_s = warm;
    candidates = r1.Search.funnel.Search.generated;
    delta_inherited = inherited;
    delta_checked = checked;
    legality_memo = d l0 l1;
    mat_memo = sum (d p0 p1) (d c0 c1);
    trace_memo = d t0 t1;
    output;
    result = r1;
  }

let candidates_per_s (o : outcome) =
  if o.wall_s > 0.0 then float_of_int o.candidates /. o.wall_s else 0.0

let json_of_outcome ~cores (o : outcome) : string =
  let total = o.delta_inherited + o.delta_checked in
  Printf.sprintf
    "    {\"name\": %S, \"jobs\": %d, \"effective_jobs\": %d, \"wall_s\": %.6f, \
     \"wall_cold_s\": %.6f, \"wall_warm_s\": %.6f, \"candidates\": %d, \
     \"candidates_per_s\": %.1f, \"delta_inherit_rate\": %.3f, \
     \"legality_memo_hit_rate\": %.3f, \"mat_memo_hit_rate\": %.3f, \
     \"trace_memo_hit_rate\": %.3f, \"reuse_classes\": %d, \"reuse_pruned\": %d, \
     \"sim_shared\": %d%s}"
    o.name o.jobs o.effective_jobs o.wall_s o.wall_cold_s o.wall_warm_s o.candidates
    (candidates_per_s o)
    (if total = 0 then 0.0 else float_of_int o.delta_inherited /. float_of_int total)
    (memo_rate o.legality_memo) (memo_rate o.mat_memo) (memo_rate o.trace_memo)
    o.result.Search.funnel.Search.reuse_classes o.result.Search.funnel.Search.reuse_pruned
    o.result.Search.funnel.Search.sim_shared
    (match warning_of o ~cores with
    | Some w -> Printf.sprintf ", \"warning\": %S" w
    | None -> "")

(* ---- perf guard: compare against a committed report ---- *)

let float_field k j =
  match Json.member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let run_guard ~path ~cand_per_s ~winner ~misses =
  let text =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let j =
    match Json.parse text with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "perf-guard: cannot parse %s: %s\n" path e;
        exit 2
  in
  let committed_cps =
    match float_field "candidates_per_sec" j with
    | Some f -> f
    | None ->
        Printf.eprintf "perf-guard: %s has no candidates_per_sec\n" path;
        exit 2
  in
  let committed_winner = Option.value ~default:"?" (Json.string_field "winner" j) in
  let committed_misses = Json.int_field "winner_misses" j in
  let failures = ref [] in
  if cand_per_s < 0.5 *. committed_cps then
    failures :=
      Printf.sprintf "throughput regressed: %.1f candidates/s < 50%% of committed %.1f"
        cand_per_s committed_cps
      :: !failures;
  if not (String.equal winner committed_winner) then
    failures :=
      Printf.sprintf "winner drifted: committed %S, got %S" committed_winner winner :: !failures;
  (match (committed_misses, misses) with
  | Some c, Some m when c <> m ->
      failures := Printf.sprintf "winner misses drifted: committed %d, got %d" c m :: !failures
  | _ -> ());
  match !failures with
  | [] ->
      Printf.printf "perf-guard PASS: %.1f candidates/s (committed %.1f), winner %S\n" cand_per_s
        committed_cps winner
  | fs ->
      List.iter (fun f -> Printf.eprintf "perf-guard FAIL: %s\n" f) (List.rev fs);
      exit 1

let () =
  let speclist =
    [
      ("--jobs", Arg.Set_int par_jobs, "N worker domains for the parallel configuration");
      ("--smoke", Arg.Set smoke, " tiny fixed-seed search with a pinned winner");
      ( "--guard",
        Arg.Set_string guard_path,
        "FILE fail if throughput < 50% of FILE's committed candidates_per_sec or the winner \
         changed" );
      ("-o", Arg.Set_string out_path, "FILE write the JSON report here (default: stdout)");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_search [--jobs N] [--smoke] [--guard FILE] [-o FILE]";
  let config = if !smoke then smoke_config else Search.default_config in
  let cores = Domain.recommended_domain_count () in
  (* explicit sequencing: OCaml evaluates list elements right-to-left,
     and the first config must be the one that pays the cold pass *)
  let o_seq = run_config ~name:"jobs1" ~jobs:1 config in
  let o_par = run_config ~name:(Printf.sprintf "jobs%d" !par_jobs) ~jobs:!par_jobs config in
  let outcomes = [ o_seq; o_par ] in
  let baseline = List.hd outcomes and best = List.nth outcomes 1 in
  let equal = String.equal baseline.output best.output in
  let winner_line =
    match baseline.result.Search.winner with
    | Some w -> Search.recipe_line w.Search.recipe
    | None -> "none"
  in
  let winner_misses =
    match baseline.result.Search.winner with
    | Some { Search.misses = Some m; _ } -> Some m
    | _ -> None
  in
  let warning =
    match List.filter_map (warning_of ~cores) outcomes with
    | [] -> ""
    | w :: _ -> Printf.sprintf "  \"warning\": %S,\n" w
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"optimize kji cholesky (beam=%d depth=%d finalists=%d size=%d seed=%d)\",\n\
      \  \"cores\": %d,\n\
       %s\
      \  \"configs\": [\n\
       %s\n\
      \  ],\n\
      \  \"winner\": %S,\n\
      \  \"winner_misses\": %s,\n\
      \  \"source_misses\": %s,\n\
      \  \"outputs_byte_equal\": %b,\n\
      \  \"speedup\": %.2f,\n\
      \  \"candidates_per_sec\": %.1f,\n\
      \  \"reuse_pruned\": %d\n\
       }\n"
      config.Search.beam config.Search.depth config.Search.finalists config.Search.size
      config.Search.seed cores warning
      (String.concat ",\n" (List.map (json_of_outcome ~cores) outcomes))
      winner_line
      (match winner_misses with Some m -> string_of_int m | None -> "null")
      (match baseline.result.Search.source_misses with
      | Some m -> string_of_int m
      | None -> "null")
      equal
      (if best.wall_s > 0.0 then baseline.wall_s /. best.wall_s else 0.0)
      (candidates_per_s baseline)
      baseline.result.Search.funnel.Search.reuse_pruned
  in
  (match !out_path with
  | "" -> print_string json
  | path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc);
  if not equal then (
    prerr_endline "FAIL: jobs=1 and jobs=N produced different outputs";
    exit 1);
  if !smoke && not (String.equal winner_line smoke_winner) then (
    Printf.eprintf "FAIL: smoke winner drifted: expected %S, got %S\n" smoke_winner winner_line;
    exit 1);
  if !guard_path <> "" then
    run_guard ~path:!guard_path
      ~cand_per_s:(candidates_per_s baseline)
      ~winner:winner_line ~misses:winner_misses
