(* Solver-core benchmark: measures what the memoized, parallel Omega
   core buys on the paper's full-Cholesky workload and emits a JSON
   report (BENCH_solver.json via `make bench-json`).

   One workload iteration = dependence analysis of LU and of the full
   Cholesky kernel (Section 2), the legality check of the corrected
   matrix C, completion from the paper's single partial row (Example
   12), code generation from the completed matrix, and translation
   validation of the generated program.  The workload renders every
   result into a byte buffer; the benchmark runs it under each
   configuration (cache off / on, jobs 1 / n) and fails loudly if any
   two configurations disagree on a single byte — speed that changes
   answers is not speed.

   `--smoke` runs one iteration of everything (wired into `dune
   runtest`) so the tier-1 gate exercises the same code path the real
   benchmark measures. *)

module Px = Inl_kernels.Paper_examples
module Mat = Inl.Mat
module Vec = Inl.Vec
module Pool = Inl.Pool
module Omega = Inl.Omega
module Cache = Inl.Cache

let iterations = ref 24
let out_path = ref ""
let par_jobs = ref 4

let e12_partial () = [ Vec.of_int_list [ 0; 0; 0; 0; 0; 1; 0 ] ]

(* One full workload pass; everything observable goes into the buffer so
   configurations can be compared byte for byte. *)
let workload () : string =
  let buf = Buffer.create 65536 in
  for _ = 1 to !iterations do
    (* LU factorization: a second solver-heavy dependence analysis *)
    let lu = Inl.analyze_source Px.lu in
    List.iter (fun d -> Buffer.add_string buf (Format.asprintf "%a\n" Inl.Dep.pp d)) lu.Inl.deps;
    let ctx = Inl.analyze_source Px.cholesky in
    List.iter (fun d -> Buffer.add_string buf (Format.asprintf "%a\n" Inl.Dep.pp d)) ctx.Inl.deps;
    (match Inl.check ctx (Mat.of_int_lists Px.corrected_c_rows) with
    | Inl.Legality.Legal { unsatisfied; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "corrected C: legal, %d unsatisfied\n" (List.length unsatisfied))
    | Inl.Legality.Illegal msg -> Buffer.add_string buf ("corrected C: illegal: " ^ msg ^ "\n"));
    match Inl.complete_result ctx ~partial:(e12_partial ()) with
    | Error ds -> Buffer.add_string buf (Inl.Diag.list_to_string ds ^ "\n")
    | Ok m -> (
        Buffer.add_string buf (Format.asprintf "completed:\n%a\n" Mat.pp m);
        match Inl.transform ctx m with
        | Ok prog ->
            Buffer.add_string buf (Inl.Pp.program_to_string prog ^ "\n");
            (* translation validation of the generated code — the most
               projection-heavy phase of the pipeline *)
            let report = Inl_verify.Verify.run ~against:ctx.Inl.program prog in
            let ds = Inl_verify.Verify.diags report in
            Buffer.add_string buf
              (Printf.sprintf "verify: %d findings\n%s" (List.length ds)
                 (String.concat "" (List.map (fun d -> Inl.Diag.to_string d ^ "\n") ds)))
        | Error ds -> Buffer.add_string buf (Inl.Diag.list_to_string ds ^ "\n"))
  done;
  Buffer.contents buf

type config = { name : string; jobs : int; cache : bool }

type outcome = {
  config : config;
  effective_jobs : int;
  wall_s : float;
  solver_calls : int;
  cache_hit_rate : float;
  output : string;
}

let run_config (c : config) : outcome =
  Pool.set_jobs c.jobs;
  Omega.set_cache_enabled c.cache;
  Omega.clear_cache ();
  Omega.reset_solver_calls ();
  Inl.Stats.reset ();
  (* two passes, best wall time: suppresses scheduler noise; the cache is
     cleared once per configuration, so for cache-on configs the second
     pass measures the steady state the first pass built *)
  let t0 = Unix.gettimeofday () in
  let output = workload () in
  let pass1 = Unix.gettimeofday () -. t0 in
  let sat, proj = Omega.solver_calls () in
  let rate = Cache.hit_rate (Omega.cache_stats ()) in
  let t1 = Unix.gettimeofday () in
  let output2 = workload () in
  let pass2 = Unix.gettimeofday () -. t1 in
  if not (String.equal output output2) then (
    prerr_endline "FAIL: two passes of one configuration disagreed";
    exit 1);
  let wall_s = Float.min pass1 pass2 in
  {
    config = c;
    effective_jobs = Pool.jobs ();
    wall_s;
    solver_calls = sat + proj;
    cache_hit_rate = rate;
    output;
  }

let json_of_outcome (o : outcome) : string =
  Printf.sprintf
    "    {\"name\": %S, \"jobs\": %d, \"effective_jobs\": %d, \"cache\": %b, \"wall_s\": %.6f, \
     \"solver_calls\": %d, \"cache_hit_rate\": %.4f}"
    o.config.name o.config.jobs o.effective_jobs o.config.cache o.wall_s o.solver_calls
    o.cache_hit_rate

let () =
  let speclist =
    [
      ("--iterations", Arg.Set_int iterations, "N workload iterations per configuration");
      ("--jobs", Arg.Set_int par_jobs, "N worker domains for the parallel configurations");
      ( "--smoke",
        Arg.Unit (fun () -> iterations := 1),
        " single-iteration run for the test suite" );
      ("-o", Arg.Set_string out_path, "FILE write the JSON report here (default: stdout)");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_solver [--iterations N] [--jobs N] [--smoke] [-o FILE]";
  let configs =
    [
      { name = "cache-off-jobs1"; jobs = 1; cache = false };
      { name = "cache-on-jobs1"; jobs = 1; cache = true };
      { name = Printf.sprintf "cache-on-jobs%d" !par_jobs; jobs = !par_jobs; cache = true };
    ]
  in
  let outcomes = List.map run_config configs in
  let baseline = List.hd outcomes in
  let best = List.nth outcomes (List.length outcomes - 1) in
  let equal =
    List.for_all (fun o -> String.equal o.output baseline.output) outcomes
  in
  let speedup = if best.wall_s > 0.0 then baseline.wall_s /. best.wall_s else 0.0 in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"lu+full-cholesky analyze + legality + E12 completion + codegen + verify\",\n\
      \  \"iterations\": %d,\n\
      \  \"configs\": [\n\
       %s\n\
      \  ],\n\
      \  \"outputs_byte_equal\": %b,\n\
      \  \"speedup\": %.2f\n\
       }\n"
      !iterations
      (String.concat ",\n" (List.map json_of_outcome outcomes))
      equal speedup
  in
  (match !out_path with
  | "" -> print_string json
  | path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc);
  if not equal then (
    prerr_endline "FAIL: configurations produced different outputs";
    exit 1)
